// Zero-copy packet payloads.
//
// A PayloadRef is a refcounted (offset, length) view into a pooled buffer
// block. The transport allocates one block per message, DMA-reads directly
// into it, and every MTU-sized packet of the message carries a slice of the
// same block — packetization stops copying bytes. Blocks come from a
// size-classed free-list pool, so steady-state traffic allocates nothing.
//
// Refcounts are NOT atomic: like the EventLoop, payloads belong to one
// simulation thread. The pool is thread_local so independent loops on
// different threads (some tests do this) stay safe.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "common/bytes.hpp"

namespace migr::common {

namespace detail {

struct PayloadBlock {
  std::uint32_t refs;
  std::uint32_t capacity;
};

PayloadBlock* payload_block_alloc(std::size_t n);
void payload_block_free(PayloadBlock* b) noexcept;

inline std::uint8_t* payload_block_data(PayloadBlock* b) noexcept {
  return reinterpret_cast<std::uint8_t*>(b + 1);
}

}  // namespace detail

class PayloadRef {
 public:
  PayloadRef() = default;

  PayloadRef(const PayloadRef& o) noexcept : block_(o.block_), off_(o.off_), len_(o.len_) {
    if (block_ != nullptr) block_->refs++;
  }
  PayloadRef(PayloadRef&& o) noexcept : block_(o.block_), off_(o.off_), len_(o.len_) {
    o.block_ = nullptr;
    o.off_ = 0;
    o.len_ = 0;
  }
  PayloadRef& operator=(const PayloadRef& o) noexcept {
    if (this != &o) {
      release();
      block_ = o.block_;
      off_ = o.off_;
      len_ = o.len_;
      if (block_ != nullptr) block_->refs++;
    }
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& o) noexcept {
    if (this != &o) {
      release();
      block_ = o.block_;
      off_ = o.off_;
      len_ = o.len_;
      o.block_ = nullptr;
      o.off_ = 0;
      o.len_ = 0;
    }
    return *this;
  }
  ~PayloadRef() { release(); }

  /// A fresh writable buffer of `n` bytes (uninitialized) from the pool.
  static PayloadRef alloc(std::size_t n) {
    if (n == 0) return {};
    return PayloadRef(detail::payload_block_alloc(n), 0, static_cast<std::uint32_t>(n));
  }

  /// A fresh buffer holding a copy of `src`.
  static PayloadRef copy_of(std::span<const std::uint8_t> src) {
    PayloadRef p = alloc(src.size());
    if (!src.empty()) std::memcpy(p.mutable_data(), src.data(), src.size());
    return p;
  }

  std::size_t size() const noexcept { return len_; }
  bool empty() const noexcept { return len_ == 0; }

  const std::uint8_t* data() const noexcept {
    return block_ == nullptr ? nullptr : detail::payload_block_data(block_) + off_;
  }
  /// Writable view. The caller must be the sole logical writer (fill the
  /// buffer before sharing slices of it).
  std::uint8_t* mutable_data() noexcept {
    return block_ == nullptr ? nullptr : detail::payload_block_data(block_) + off_;
  }

  std::span<const std::uint8_t> span() const noexcept { return {data(), len_}; }
  std::span<std::uint8_t> mutable_span() noexcept { return {mutable_data(), len_}; }
  /// Payloads convert to read-only spans so DMA/memory APIs take them as-is.
  operator std::span<const std::uint8_t>() const noexcept {  // NOLINT
    return span();
  }

  /// A view of [off, off+n) sharing this buffer (refcounted, no copy).
  PayloadRef slice(std::size_t off, std::size_t n) const noexcept {
    if (n == 0) return {};
    block_->refs++;
    return PayloadRef(block_, off_ + static_cast<std::uint32_t>(off),
                      static_cast<std::uint32_t>(n));
  }

  Bytes to_bytes() const { return Bytes(data(), data() + len_); }

 private:
  PayloadRef(detail::PayloadBlock* block, std::uint32_t off, std::uint32_t len) noexcept
      : block_(block), off_(off), len_(len) {}

  void release() noexcept {
    if (block_ != nullptr && --block_->refs == 0) detail::payload_block_free(block_);
    block_ = nullptr;
  }

  detail::PayloadBlock* block_ = nullptr;
  std::uint32_t off_ = 0;
  std::uint32_t len_ = 0;
};

}  // namespace migr::common
