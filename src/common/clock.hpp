// Abstract source of simulated time. Lives in common (not sim) so that the
// telemetry layer and the logger can stamp output with sim time without
// depending on the event-loop library; sim::EventLoop implements it.
#pragma once

#include <cstdint>

namespace migr::common {

class SimTimeSource {
 public:
  virtual ~SimTimeSource() = default;
  /// Nanoseconds of simulated time since world creation.
  virtual std::int64_t now_ns() const = 0;
};

}  // namespace migr::common
