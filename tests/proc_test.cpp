#include <gtest/gtest.h>

#include <cstring>

#include "proc/address_space.hpp"
#include "proc/process.hpp"

namespace migr::proc {
namespace {

using common::Errc;

TEST(AddressSpace, MmapFixedAndAccess) {
  AddressSpace mem;
  ASSERT_TRUE(mem.mmap_fixed(0x10000, 8192, "buf").is_ok());
  std::uint8_t data[4] = {1, 2, 3, 4};
  ASSERT_TRUE(mem.write(0x10000 + 100, data).is_ok());
  std::uint8_t out[4] = {};
  ASSERT_TRUE(mem.read(0x10000 + 100, out).is_ok());
  EXPECT_EQ(std::memcmp(data, out, 4), 0);
}

TEST(AddressSpace, UnmappedAccessFails) {
  AddressSpace mem;
  std::uint8_t b[1] = {0};
  EXPECT_EQ(mem.read(0x5000, b).code(), Errc::permission_denied);
  EXPECT_EQ(mem.write(0x5000, b).code(), Errc::permission_denied);
}

TEST(AddressSpace, OverlappingMmapRejected) {
  AddressSpace mem;
  ASSERT_TRUE(mem.mmap_fixed(0x10000, 8192, "a").is_ok());
  EXPECT_EQ(mem.mmap_fixed(0x11000, 4096, "b").code(), Errc::already_exists);
  EXPECT_EQ(mem.mmap_fixed(0xF000, 8192, "c").code(), Errc::already_exists);
  // Adjacent is fine.
  EXPECT_TRUE(mem.mmap_fixed(0x12000, 4096, "d").is_ok());
}

TEST(AddressSpace, CrossPageAccess) {
  AddressSpace mem;
  ASSERT_TRUE(mem.mmap_fixed(0x10000, 3 * kPageSize, "buf").is_ok());
  std::vector<std::uint8_t> data(kPageSize + 123, 0xAB);
  ASSERT_TRUE(mem.write(0x10000 + kPageSize - 50, data).is_ok());
  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(mem.read(0x10000 + kPageSize - 50, out).is_ok());
  EXPECT_EQ(data, out);
}

TEST(AddressSpace, CrossVmaAccessWhenAdjacent) {
  AddressSpace mem;
  ASSERT_TRUE(mem.mmap_fixed(0x10000, kPageSize, "a").is_ok());
  ASSERT_TRUE(mem.mmap_fixed(0x10000 + kPageSize, kPageSize, "b").is_ok());
  std::vector<std::uint8_t> data(100, 7);
  EXPECT_TRUE(mem.write(0x10000 + kPageSize - 50, data).is_ok());
}

TEST(AddressSpace, MunmapRemovesPages) {
  AddressSpace mem;
  ASSERT_TRUE(mem.mmap_fixed(0x10000, kPageSize, "a").is_ok());
  ASSERT_TRUE(mem.munmap(0x10000).is_ok());
  std::uint8_t b[1] = {0};
  EXPECT_FALSE(mem.read(0x10000, b).is_ok());
  EXPECT_EQ(mem.munmap(0x10000).code(), Errc::not_found);
}

TEST(AddressSpace, MmapAnywhereDoesNotOverlap) {
  AddressSpace mem;
  auto a = mem.mmap(10000, "a");
  auto b = mem.mmap(10000, "b");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_TRUE(mem.mapped(a.value(), 10000));
  EXPECT_TRUE(mem.mapped(b.value(), 10000));
}

TEST(AddressSpace, DirtyTrackingAndClear) {
  AddressSpace mem;
  ASSERT_TRUE(mem.mmap_fixed(0x10000, 4 * kPageSize, "buf").is_ok());
  // Fresh mappings are clean until written.
  EXPECT_TRUE(mem.collect_dirty().empty());
  std::uint8_t b[1] = {1};
  ASSERT_TRUE(mem.write(0x10000 + kPageSize + 5, b).is_ok());
  auto dirty = mem.collect_dirty(/*clear=*/true);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 0x10000 + kPageSize);
  EXPECT_TRUE(mem.collect_dirty().empty());
}

TEST(AddressSpace, MarkAllDirty) {
  AddressSpace mem;
  ASSERT_TRUE(mem.mmap_fixed(0x10000, 3 * kPageSize, "buf").is_ok());
  mem.mark_all_dirty();
  EXPECT_EQ(mem.collect_dirty().size(), 3u);
}

TEST(AddressSpace, MremapPreservesContentAndPhysicalIdentity) {
  AddressSpace mem;
  ASSERT_TRUE(mem.mmap_fixed(0x10000, 2 * kPageSize, "buf").is_ok());
  std::uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(mem.write(0x10000 + kPageSize, data).is_ok());
  auto phys_before = mem.page_at(0x10000 + kPageSize);

  ASSERT_TRUE(mem.mremap(0x10000, 0x40000).is_ok());
  EXPECT_FALSE(mem.mapped(0x10000, 1));
  std::uint8_t out[8] = {};
  ASSERT_TRUE(mem.read(0x40000 + kPageSize, out).is_ok());
  EXPECT_EQ(std::memcmp(data, out, 8), 0);
  // Same physical page object after the move (mremap keeps phys pages).
  EXPECT_EQ(phys_before.get(), mem.page_at(0x40000 + kPageSize).get());
}

TEST(AddressSpace, MremapCarriesDirtyBits) {
  AddressSpace mem;
  ASSERT_TRUE(mem.mmap_fixed(0x10000, kPageSize, "buf").is_ok());
  std::uint8_t b[1] = {1};
  ASSERT_TRUE(mem.write(0x10000, b).is_ok());
  ASSERT_TRUE(mem.mremap(0x10000, 0x90000).is_ok());
  auto dirty = mem.collect_dirty();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 0x90000u);
}

TEST(AddressSpace, MremapRejectsOccupiedTarget) {
  AddressSpace mem;
  ASSERT_TRUE(mem.mmap_fixed(0x10000, kPageSize, "a").is_ok());
  ASSERT_TRUE(mem.mmap_fixed(0x20000, kPageSize, "b").is_ok());
  EXPECT_EQ(mem.mremap(0x10000, 0x20000).code(), Errc::already_exists);
}

TEST(AddressSpace, FindVmaAndTags) {
  AddressSpace mem;
  ASSERT_TRUE(mem.mmap_fixed(0x10000, kPageSize, "qp_buf").is_ok());
  const Vma* vma = mem.find_vma(0x10010);
  ASSERT_NE(vma, nullptr);
  EXPECT_EQ(vma->tag, "qp_buf");
  EXPECT_EQ(mem.find_vma(0x20000), nullptr);
}

TEST(SimProcess, PollerStopsWhenFrozen) {
  sim::EventLoop loop;
  SimProcess p(1, "app", loop);
  int ticks = 0;
  p.spawn_poller(10, [&] { ticks++; });
  loop.run_until(100);
  const int before = ticks;
  EXPECT_GT(before, 5);
  p.freeze();
  loop.run_until(200);
  EXPECT_EQ(ticks, before);
  p.thaw();
  loop.run_until(300);
  EXPECT_GT(ticks, before);
}

TEST(SimProcess, DaemonSurvivesFreezeButNotKill) {
  sim::EventLoop loop;
  SimProcess p(2, "daemon-holder", loop);
  int ticks = 0;
  p.spawn_daemon(10, [&] { ticks++; });
  p.freeze();
  loop.run_until(100);
  EXPECT_GT(ticks, 5);
  const int before = ticks;
  p.kill();
  loop.run_until(200);
  EXPECT_EQ(ticks, before);
}

}  // namespace
}  // namespace migr::proc
