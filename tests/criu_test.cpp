#include <gtest/gtest.h>

#include <cstring>

#include "criu/checkpoint.hpp"
#include "criu/dirtyrate.hpp"
#include "criu/image.hpp"
#include "sim/event_loop.hpp"

namespace migr::criu {
namespace {

using common::Errc;
using proc::kPageSize;
using proc::SimProcess;
using proc::VirtAddr;

class CriuTest : public ::testing::Test {
 protected:
  CriuTest() : src_(1, "src", loop_), dst_(2, "dst", loop_) {}

  VirtAddr alloc_filled(SimProcess& p, std::uint64_t size, std::uint8_t fill,
                        const std::string& tag = "buf") {
    VirtAddr va = p.mem().mmap(size, tag).value();
    std::vector<std::uint8_t> data(size, fill);
    EXPECT_TRUE(p.mem().write(va, data).is_ok());
    return va;
  }

  void expect_filled(SimProcess& p, VirtAddr va, std::uint64_t size, std::uint8_t fill) {
    std::vector<std::uint8_t> data(size);
    ASSERT_TRUE(p.mem().read(va, data).is_ok());
    for (std::uint64_t i = 0; i < size; ++i) ASSERT_EQ(data[i], fill) << "offset " << i;
  }

  /// Run a complete pre-copy + stop-and-copy migration of src_'s memory
  /// into dst_, with `pinned` VMAs placed at original addresses up front.
  void migrate(const std::set<VirtAddr>& pinned = {}) {
    Checkpointer ckpt(src_);
    Restorer restorer(dst_);
    auto d0 = ckpt.pre_dump();
    ASSERT_TRUE(restorer.begin(d0.image, pinned).is_ok());
    ASSERT_TRUE(restorer.apply_pages(d0.pages).is_ok());
    src_.freeze();
    auto df = ckpt.final_dump();
    ASSERT_TRUE(df.is_ok());
    ASSERT_TRUE(restorer.update(df->image, pinned).is_ok());
    ASSERT_TRUE(restorer.apply_pages(df->pages).is_ok());
    ASSERT_TRUE(restorer.finish().is_ok());
  }

  sim::EventLoop loop_;
  SimProcess src_;
  SimProcess dst_;
};

TEST(ImageFormat, MemoryImageRoundTrip) {
  MemoryImage img;
  img.mmap_cursor = 0x7f0012340000;
  img.vmas = {{0x1000, 8192, "heap"}, {0x9000, 4096, "qp_buf"}};
  auto parsed = MemoryImage::parse(img.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->mmap_cursor, img.mmap_cursor);
  ASSERT_EQ(parsed->vmas.size(), 2u);
  EXPECT_EQ(parsed->vmas[1].tag, "qp_buf");
  EXPECT_NE(parsed->find(0x9000), nullptr);
  EXPECT_EQ(parsed->find(0x5000), nullptr);
}

TEST(ImageFormat, PageSetRoundTrip) {
  PageSet set;
  PageSet::Page p;
  p.addr = 0x4000;
  p.data.assign(kPageSize, 0x5A);
  set.pages.push_back(p);
  EXPECT_EQ(set.byte_size(), kPageSize);
  auto parsed = PageSet::parse(set.serialize());
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed->pages.size(), 1u);
  EXPECT_EQ(parsed->pages[0].addr, 0x4000u);
  EXPECT_EQ(parsed->pages[0].data, p.data);
}

TEST(ImageFormat, TruncatedPageSetRejected) {
  PageSet set;
  PageSet::Page p;
  p.addr = 0x4000;
  p.data.assign(kPageSize, 1);
  set.pages.push_back(p);
  auto bytes = set.serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(PageSet::parse(bytes).is_ok());
}

TEST_F(CriuTest, FullMigrationPreservesContent) {
  VirtAddr a = alloc_filled(src_, 3 * kPageSize, 0x11);
  VirtAddr b = alloc_filled(src_, kPageSize, 0x22);
  migrate();
  expect_filled(dst_, a, 3 * kPageSize, 0x11);
  expect_filled(dst_, b, kPageSize, 0x22);
  // Allocation cursor carried over: new allocations don't collide.
  EXPECT_EQ(dst_.mem().mmap_cursor(), src_.mem().mmap_cursor());
}

TEST_F(CriuTest, DirtyPagesInLaterRoundsWin) {
  VirtAddr a = alloc_filled(src_, 2 * kPageSize, 0x11);
  Checkpointer ckpt(src_);
  Restorer restorer(dst_);
  auto d0 = ckpt.pre_dump();
  ASSERT_TRUE(restorer.begin(d0.image, {}).is_ok());
  ASSERT_TRUE(restorer.apply_pages(d0.pages).is_ok());

  // Source keeps running: page 1 changes.
  std::vector<std::uint8_t> newdata(kPageSize, 0x77);
  ASSERT_TRUE(src_.mem().write(a + kPageSize, newdata).is_ok());

  auto d1 = ckpt.pre_dump();
  EXPECT_EQ(d1.pages.pages.size(), 1u);  // only the dirty page
  ASSERT_TRUE(restorer.update(d1.image, {}).is_ok());
  ASSERT_TRUE(restorer.apply_pages(d1.pages).is_ok());

  src_.freeze();
  auto df = ckpt.final_dump();
  ASSERT_TRUE(df.is_ok());
  EXPECT_TRUE(df->pages.pages.empty());  // nothing dirtied since
  ASSERT_TRUE(restorer.apply_pages(df->pages).is_ok());
  ASSERT_TRUE(restorer.finish().is_ok());

  expect_filled(dst_, a, kPageSize, 0x11);
  expect_filled(dst_, a + kPageSize, kPageSize, 0x77);
}

TEST_F(CriuTest, FinalDumpRequiresFrozenProcess) {
  alloc_filled(src_, kPageSize, 1);
  Checkpointer ckpt(src_);
  EXPECT_EQ(ckpt.final_dump().code(), Errc::failed_precondition);
}

TEST_F(CriuTest, StagingKeepsOriginalAddressesFreeUntilFinish) {
  VirtAddr a = alloc_filled(src_, kPageSize, 0x33);
  Checkpointer ckpt(src_);
  Restorer restorer(dst_);
  auto d0 = ckpt.pre_dump();
  ASSERT_TRUE(restorer.begin(d0.image, {}).is_ok());
  ASSERT_TRUE(restorer.apply_pages(d0.pages).is_ok());
  // Before finish: the original address is NOT mapped (content is staged
  // elsewhere) — this is why naive MR registration during pre-copy fails.
  EXPECT_FALSE(dst_.mem().mapped(a, kPageSize));
  const VirtAddr staged = restorer.current_addr(a);
  ASSERT_NE(staged, 0u);
  EXPECT_NE(staged, a);
  expect_filled(dst_, staged, kPageSize, 0x33);
  // After finish, the content sits at the original address.
  src_.freeze();
  auto df = ckpt.final_dump();
  ASSERT_TRUE(restorer.apply_pages(df->pages).is_ok());
  ASSERT_TRUE(restorer.finish().is_ok());
  EXPECT_EQ(restorer.current_addr(a), a);
  expect_filled(dst_, a, kPageSize, 0x33);
}

TEST_F(CriuTest, PinnedVmaMappedAtOriginalAddressDuringPartialRestore) {
  VirtAddr mr_buf = alloc_filled(src_, 2 * kPageSize, 0x44, "mr_buf");
  alloc_filled(src_, kPageSize, 0x55, "heap");
  Checkpointer ckpt(src_);
  Restorer restorer(dst_);
  auto d0 = ckpt.pre_dump();
  auto rep = restorer.begin(d0.image, {mr_buf});
  ASSERT_TRUE(rep.is_ok());
  EXPECT_TRUE(rep->deferred.empty());
  ASSERT_TRUE(restorer.apply_pages(d0.pages).is_ok());
  // Pinned: already at the original address — MRs can be registered now.
  EXPECT_TRUE(dst_.mem().mapped(mr_buf, 2 * kPageSize));
  EXPECT_EQ(restorer.current_addr(mr_buf), mr_buf);
  expect_filled(dst_, mr_buf, 2 * kPageSize, 0x44);
}

TEST_F(CriuTest, VmaCreatedDuringPrecopyConflictsWithTempAndIsDeferred) {
  alloc_filled(src_, kPageSize, 0x01);
  Checkpointer ckpt(src_);
  Restorer restorer(dst_);
  auto d0 = ckpt.pre_dump();
  ASSERT_TRUE(restorer.begin(d0.image, {}).is_ok());
  ASSERT_TRUE(restorer.apply_pages(d0.pages).is_ok());

  // Source registers a new MR buffer during pre-copy: its address lands in
  // the range now occupied by the restorer's temporary arena.
  VirtAddr late = alloc_filled(src_, kPageSize, 0x99, "late_mr");
  auto d1 = ckpt.pre_dump();
  auto rep = restorer.update(d1.image, {late});
  ASSERT_TRUE(rep.is_ok());
  ASSERT_EQ(rep->deferred.size(), 1u);
  EXPECT_EQ(rep->deferred[0].start, late);
  ASSERT_TRUE(restorer.apply_pages(d1.pages).is_ok());
  // The address range is occupied by the restorer's temp arena, not the
  // application's buffer; the pages are buffered until finish().
  ASSERT_NE(dst_.mem().find_vma(late), nullptr);
  EXPECT_EQ(dst_.mem().find_vma(late)->tag, "criu_temp");
  EXPECT_EQ(restorer.current_addr(late), 0u);

  src_.freeze();
  auto df = ckpt.final_dump();
  ASSERT_TRUE(restorer.update(df->image, {late}).is_ok());
  ASSERT_TRUE(restorer.apply_pages(df->pages).is_ok());
  auto fin = restorer.finish();
  ASSERT_TRUE(fin.is_ok());
  // finish() reports the deferred VMA as now-mapped so the RDMA plugin can
  // register the conflicting MRs at the end of stop-and-copy (§3.2).
  ASSERT_EQ(fin->deferred.size(), 1u);
  EXPECT_EQ(fin->deferred[0].start, late);
  expect_filled(dst_, late, kPageSize, 0x99);
}

TEST_F(CriuTest, VmaUnmappedDuringPrecopyDisappears) {
  VirtAddr a = alloc_filled(src_, kPageSize, 0x11);
  VirtAddr b = alloc_filled(src_, kPageSize, 0x22);
  Checkpointer ckpt(src_);
  Restorer restorer(dst_);
  auto d0 = ckpt.pre_dump();
  ASSERT_TRUE(restorer.begin(d0.image, {}).is_ok());
  ASSERT_TRUE(restorer.apply_pages(d0.pages).is_ok());
  ASSERT_TRUE(src_.mem().munmap(b).is_ok());
  src_.freeze();
  auto df = ckpt.final_dump();
  ASSERT_TRUE(restorer.update(df->image, {}).is_ok());
  ASSERT_TRUE(restorer.apply_pages(df->pages).is_ok());
  ASSERT_TRUE(restorer.finish().is_ok());
  EXPECT_TRUE(dst_.mem().mapped(a, kPageSize));
  EXPECT_FALSE(dst_.mem().mapped(b, kPageSize));
}

TEST_F(CriuTest, DumpCostGrowsSuperlinearlyInVmaCount) {
  CriuCosts costs;
  const auto base = costs.dump_cost(0, 0);
  const auto c100 = costs.dump_cost(100, 0) - base;
  const auto c1000 = costs.dump_cost(1000, 0) - base;
  EXPECT_GT(c1000, 10 * c100);  // superlinear in the VMA count
}

TEST_F(CriuTest, DirtyRateEstimatorEstimatesChurnFraction) {
  const VirtAddr va = alloc_filled(src_, 256 * kPageSize, 0x11);
  DirtyRateEstimator est(src_, DirtyRateConfig{});
  EXPECT_FALSE(est.open());
  EXPECT_FALSE(est.primed());
  est.begin_interval(0);
  EXPECT_TRUE(est.open());
  // Rewrite a quarter of the pages with new content; untouched pages hash
  // identically and must not count.
  for (int p = 0; p < 64; ++p) {
    std::uint8_t b = 0x22;
    ASSERT_TRUE(src_.mem().write(va + static_cast<VirtAddr>(p) * kPageSize, {&b, 1}).is_ok());
  }
  const std::uint64_t pages = est.end_interval(sim::sec(1));
  EXPECT_TRUE(est.primed());
  EXPECT_FALSE(est.open());
  // Sampling with replacement: the estimate is statistical, not exact.
  EXPECT_GE(pages, 32u);
  EXPECT_LE(pages, 96u);
  EXPECT_NEAR(est.pages_per_sec(), static_cast<double>(pages), 1e-6);
  EXPECT_NEAR(est.bytes_per_sec(), static_cast<double>(pages) * kPageSize, 1e-3);

  // A quiet second interval folds into the EWMA (alpha 0.5): rate halves.
  est.begin_interval(sim::sec(1));
  const std::uint64_t quiet = est.end_interval(sim::sec(2));
  EXPECT_EQ(quiet, 0u);
  EXPECT_NEAR(est.pages_per_sec(), static_cast<double>(pages) / 2, 1.0);
}

TEST_F(CriuTest, FinalDumpLazyListsDirtyPagesInsteadOfCopying) {
  const VirtAddr va = alloc_filled(src_, 8 * kPageSize, 0x33);
  Checkpointer ckpt(src_);
  auto d0 = ckpt.pre_dump();
  EXPECT_EQ(d0.pages.pages.size(), 8u);
  // Dirty two pages after the first pass, then freeze for the lazy dump.
  std::uint8_t b = 0x44;
  ASSERT_TRUE(src_.mem().write(va + 2 * kPageSize, {&b, 1}).is_ok());
  ASSERT_TRUE(src_.mem().write(va + 5 * kPageSize, {&b, 1}).is_ok());
  src_.freeze();
  auto lazy = ckpt.final_dump_lazy();
  ASSERT_TRUE(lazy.is_ok());
  ASSERT_EQ(lazy->missing.size(), 2u);
  EXPECT_EQ(lazy->missing[0], va + 2 * kPageSize);
  EXPECT_EQ(lazy->missing[1], va + 5 * kPageSize);
  EXPECT_EQ(lazy->image.vmas.size(), 1u);
  // The whole point: the lazy dump's blackout cost carries no per-page
  // term, only the VMA walk plus the freeze overhead.
  CriuCosts costs;
  EXPECT_EQ(lazy->cost, costs.dump_cost(1, 0) + costs.freeze);
}

TEST_F(CriuTest, FinalDumpLazyWithoutPreDumpLeavesAllPagesMissing) {
  (void)alloc_filled(src_, 4 * kPageSize, 0x55);
  Checkpointer ckpt(src_);
  src_.freeze();
  auto lazy = ckpt.final_dump_lazy();
  ASSERT_TRUE(lazy.is_ok());
  EXPECT_EQ(lazy->missing.size(), 4u);
}

TEST_F(CriuTest, RestoreLifecycleGuards) {
  Restorer restorer(dst_);
  EXPECT_EQ(restorer.finish().code(), Errc::failed_precondition);
  EXPECT_EQ(restorer.apply_pages(PageSet{}).code(), Errc::failed_precondition);
  MemoryImage empty;
  empty.mmap_cursor = dst_.mem().mmap_cursor() + (1ull << 30);
  ASSERT_TRUE(restorer.begin(empty, {}).is_ok());
  EXPECT_EQ(restorer.begin(empty, {}).code(), Errc::failed_precondition);
  ASSERT_TRUE(restorer.finish().is_ok());
  EXPECT_EQ(restorer.finish().code(), Errc::failed_precondition);
}

TEST_F(CriuTest, EpochDumpsShrinkToDirtySetForQuietGuest) {
  // Continuous-FT micro-checkpointing: epoch 0 carries the full image; a
  // later epoch carries only what was dirtied since the previous one, so a
  // quiet guest's steady-state epochs are near-empty.
  const VirtAddr va = alloc_filled(src_, 64 * kPageSize, 0xAB);
  Checkpointer ckpt(src_);

  // Requires a frozen process, like final_dump.
  EXPECT_EQ(ckpt.epoch_dump().code(), Errc::failed_precondition);

  src_.freeze();
  auto e0 = ckpt.epoch_dump();
  ASSERT_TRUE(e0.is_ok());
  EXPECT_EQ(e0->epoch, 0u);
  EXPECT_EQ(e0->pages.pages.size(), 64u);
  src_.thaw();

  // Touch two pages between epochs.
  const std::uint8_t b = 0xCD;
  ASSERT_TRUE(src_.mem().write(va + 3 * kPageSize, {&b, 1}).is_ok());
  ASSERT_TRUE(src_.mem().write(va + 40 * kPageSize, {&b, 1}).is_ok());

  src_.freeze();
  auto e1 = ckpt.epoch_dump();
  ASSERT_TRUE(e1.is_ok());
  EXPECT_EQ(e1->epoch, 1u);
  EXPECT_EQ(e1->pages.pages.size(), 2u);
  // The incremental epoch is a small fraction of the full image.
  EXPECT_LT(e1->pages.byte_size() * 8, e0->pages.byte_size());
  src_.thaw();

  // A fully quiet interval dumps zero pages; epochs are not terminal, so
  // they keep flowing.
  src_.freeze();
  auto e2 = ckpt.epoch_dump();
  ASSERT_TRUE(e2.is_ok());
  EXPECT_EQ(e2->epoch, 2u);
  EXPECT_TRUE(e2->pages.pages.empty());
  EXPECT_EQ(ckpt.epochs_dumped(), 3u);
}

}  // namespace
}  // namespace migr::criu
