#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "rnic/device.hpp"
#include "rnic/world.hpp"

namespace migr::rnic {
namespace {

using common::Errc;

/// Two hosts, one process + context each, one PD/CQ each, helpers to make
/// buffers and connected RC QP pairs.
class RnicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_a_ = &world_.add_device(1);
    dev_b_ = &world_.add_device(2);
    proc_a_ = &world_.add_process("a");
    proc_b_ = &world_.add_process("b");
    ctx_a_ = world_to_ctx(*dev_a_, *proc_a_);
    ctx_b_ = world_to_ctx(*dev_b_, *proc_b_);
    pd_a_ = ctx_a_->alloc_pd().value();
    pd_b_ = ctx_b_->alloc_pd().value();
    cq_a_ = ctx_a_->create_cq(1024).value();
    cq_b_ = ctx_b_->create_cq(1024).value();
  }

  static Context* world_to_ctx(Device& d, proc::SimProcess& p) {
    auto r = d.open(p);
    EXPECT_TRUE(r.is_ok());
    return r.value();
  }

  struct Buf {
    proc::VirtAddr addr;
    Mr mr;
  };

  Buf make_buf(Context& ctx, Handle pd, std::uint64_t size,
               std::uint32_t access = kAccessLocalWrite | kAccessRemoteWrite |
                                      kAccessRemoteRead | kAccessRemoteAtomic) {
    auto va = ctx.process().mem().mmap(size, "buf");
    EXPECT_TRUE(va.is_ok());
    auto mr = ctx.reg_mr(pd, va.value(), size, access);
    EXPECT_TRUE(mr.is_ok());
    return Buf{va.value(), mr.value()};
  }

  /// Create a connected RC QP pair (a side, b side).
  std::pair<Qpn, Qpn> connect_pair(QpCaps caps = {}) {
    QpInitAttr attr_a{QpType::rc, pd_a_, cq_a_, cq_a_, 0, caps};
    QpInitAttr attr_b{QpType::rc, pd_b_, cq_b_, cq_b_, 0, caps};
    Qpn qa = ctx_a_->create_qp(attr_a).value();
    Qpn qb = ctx_b_->create_qp(attr_b).value();
    EXPECT_TRUE(rc_connect(*ctx_a_, qa, *ctx_b_, qb).is_ok());
    return {qa, qb};
  }

  /// Drain one CQE from a CQ, running the loop until it shows up.
  Cqe wait_cqe(Context& ctx, Handle cq, sim::DurationNs limit = sim::msec(100)) {
    Cqe cqe;
    const sim::TimeNs deadline = world_.loop().now() + limit;
    while (world_.loop().now() < deadline) {
      if (ctx.poll_cq(cq, {&cqe, 1}) == 1) return cqe;
      if (world_.loop().empty()) break;
      world_.loop().run_until(world_.loop().now() + sim::usec(10));
    }
    ADD_FAILURE() << "no CQE within limit";
    return cqe;
  }

  void fill_pattern(proc::SimProcess& p, proc::VirtAddr addr, std::size_t n,
                    std::uint8_t seed) {
    std::vector<std::uint8_t> data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<std::uint8_t>(seed + i * 7);
    ASSERT_TRUE(p.mem().write(addr, data).is_ok());
  }

  void expect_pattern(proc::SimProcess& p, proc::VirtAddr addr, std::size_t n,
                      std::uint8_t seed) {
    std::vector<std::uint8_t> data(n);
    ASSERT_TRUE(p.mem().read(addr, data).is_ok());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(data[i], static_cast<std::uint8_t>(seed + i * 7)) << "at offset " << i;
    }
  }

  World world_;
  Device* dev_a_ = nullptr;
  Device* dev_b_ = nullptr;
  proc::SimProcess* proc_a_ = nullptr;
  proc::SimProcess* proc_b_ = nullptr;
  Context* ctx_a_ = nullptr;
  Context* ctx_b_ = nullptr;
  Handle pd_a_ = 0, pd_b_ = 0, cq_a_ = 0, cq_b_ = 0;
};

// ---------------------------------------------------------------------------
// Control path
// ---------------------------------------------------------------------------

TEST_F(RnicTest, QpnsDifferAcrossDevices) {
  auto [qa, qb] = connect_pair();
  // Devices draw QPNs from randomized bases; the premise of virtualization.
  EXPECT_NE(qa, qb);
  EXPECT_LE(qa, kQpnMask);
  EXPECT_LE(qb, kQpnMask);
}

TEST_F(RnicTest, KeysAreOpaqueNonDense) {
  auto b1 = make_buf(*ctx_a_, pd_a_, 4096);
  auto b2 = make_buf(*ctx_a_, pd_a_, 4096);
  EXPECT_NE(b1.mr.lkey, b2.mr.lkey);
  EXPECT_NE(b1.mr.lkey + 1, b2.mr.lkey);  // not dense
}

TEST_F(RnicTest, RegMrRequiresMappedMemory) {
  auto r = ctx_a_->reg_mr(pd_a_, 0xDEAD0000, 4096, kAccessLocalWrite);
  EXPECT_EQ(r.code(), Errc::permission_denied);
}

TEST_F(RnicTest, RemoteWriteRequiresLocalWrite) {
  auto va = proc_a_->mem().mmap(4096, "buf").value();
  auto r = ctx_a_->reg_mr(pd_a_, va, 4096, kAccessRemoteWrite);
  EXPECT_EQ(r.code(), Errc::invalid_argument);
}

TEST_F(RnicTest, QpStateMachineEnforced) {
  QpInitAttr attr{QpType::rc, pd_a_, cq_a_, cq_a_, 0, {}};
  Qpn q = ctx_a_->create_qp(attr).value();
  EXPECT_EQ(ctx_a_->query_qp_state(q).value(), QpState::reset);
  // RTR before INIT is rejected.
  EXPECT_EQ(ctx_a_->modify_qp_rtr(q, 2, 77, 0).code(), Errc::failed_precondition);
  ASSERT_TRUE(ctx_a_->modify_qp_init(q).is_ok());
  EXPECT_EQ(ctx_a_->modify_qp_init(q).code(), Errc::failed_precondition);
  ASSERT_TRUE(ctx_a_->modify_qp_rtr(q, 2, 77, 0).is_ok());
  ASSERT_TRUE(ctx_a_->modify_qp_rts(q, 0).is_ok());
  EXPECT_EQ(ctx_a_->query_qp_state(q).value(), QpState::rts);
}

TEST_F(RnicTest, PostSendRequiresRts) {
  QpInitAttr attr{QpType::rc, pd_a_, cq_a_, cq_a_, 0, {}};
  Qpn q = ctx_a_->create_qp(attr).value();
  SendWr wr;
  wr.opcode = WrOpcode::send;
  EXPECT_EQ(ctx_a_->post_send(q, wr).code(), Errc::failed_precondition);
}

TEST_F(RnicTest, SqFullIsResourceExhausted) {
  QpCaps caps{.max_send_wr = 2, .max_recv_wr = 2};
  auto [qa, qb] = connect_pair(caps);
  auto buf = make_buf(*ctx_a_, pd_a_, 4096);
  SendWr wr;
  wr.opcode = WrOpcode::rdma_read;  // reads stay in SQ until responses
  auto remote = make_buf(*ctx_b_, pd_b_, 4096);
  wr.remote_addr = remote.addr;
  wr.rkey = remote.mr.rkey;
  wr.sge = {{buf.addr, 64, buf.mr.lkey}};
  EXPECT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  EXPECT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  EXPECT_EQ(ctx_a_->post_send(qa, wr).code(), Errc::resource_exhausted);
}

TEST_F(RnicTest, DeviceQpLimit) {
  DeviceConfig cfg;
  cfg.max_qp = 2;
  Device& d = world_.add_device(9, cfg);
  auto& p = world_.add_process("p9");
  Context* ctx = d.open(p).value();
  Handle pd = ctx->alloc_pd().value();
  Handle cq = ctx->create_cq(16).value();
  QpInitAttr attr{QpType::rc, pd, cq, cq, 0, {}};
  EXPECT_TRUE(ctx->create_qp(attr).is_ok());
  EXPECT_TRUE(ctx->create_qp(attr).is_ok());
  EXPECT_EQ(ctx->create_qp(attr).code(), Errc::resource_exhausted);
}

// ---------------------------------------------------------------------------
// Two-sided SEND/RECV
// ---------------------------------------------------------------------------

TEST_F(RnicTest, SendRecvSmallMessage) {
  auto [qa, qb] = connect_pair();
  auto sbuf = make_buf(*ctx_a_, pd_a_, 4096);
  auto rbuf = make_buf(*ctx_b_, pd_b_, 4096);
  fill_pattern(*proc_a_, sbuf.addr, 64, 3);

  RecvWr rwr;
  rwr.wr_id = 900;
  rwr.sge = {{rbuf.addr, 4096, rbuf.mr.lkey}};
  ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());

  SendWr swr;
  swr.wr_id = 100;
  swr.opcode = WrOpcode::send;
  swr.sge = {{sbuf.addr, 64, sbuf.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, swr).is_ok());

  Cqe scqe = wait_cqe(*ctx_a_, cq_a_);
  EXPECT_EQ(scqe.wr_id, 100u);
  EXPECT_EQ(scqe.status, CqeStatus::success);
  EXPECT_EQ(scqe.opcode, CqeOpcode::send);
  EXPECT_EQ(scqe.qpn, qa);

  Cqe rcqe = wait_cqe(*ctx_b_, cq_b_);
  EXPECT_EQ(rcqe.wr_id, 900u);
  EXPECT_EQ(rcqe.opcode, CqeOpcode::recv);
  EXPECT_EQ(rcqe.byte_len, 64u);
  EXPECT_EQ(rcqe.qpn, qb);
  expect_pattern(*proc_b_, rbuf.addr, 64, 3);
}

TEST_F(RnicTest, SendMultiPacketMessage) {
  auto [qa, qb] = connect_pair();
  const std::size_t size = 3 * 4096 + 500;  // 4 packets
  auto sbuf = make_buf(*ctx_a_, pd_a_, size);
  auto rbuf = make_buf(*ctx_b_, pd_b_, size);
  fill_pattern(*proc_a_, sbuf.addr, size, 11);

  RecvWr rwr;
  rwr.sge = {{rbuf.addr, static_cast<std::uint32_t>(size), rbuf.mr.lkey}};
  ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());
  SendWr swr;
  swr.opcode = WrOpcode::send;
  swr.sge = {{sbuf.addr, static_cast<std::uint32_t>(size), sbuf.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, swr).is_ok());

  Cqe rcqe = wait_cqe(*ctx_b_, cq_b_);
  EXPECT_EQ(rcqe.byte_len, size);
  expect_pattern(*proc_b_, rbuf.addr, size, 11);
  wait_cqe(*ctx_a_, cq_a_);
}

TEST_F(RnicTest, SendWithImmCarriesImmediate) {
  auto [qa, qb] = connect_pair();
  auto sbuf = make_buf(*ctx_a_, pd_a_, 64);
  auto rbuf = make_buf(*ctx_b_, pd_b_, 64);
  RecvWr rwr;
  rwr.sge = {{rbuf.addr, 64, rbuf.mr.lkey}};
  ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());
  SendWr swr;
  swr.opcode = WrOpcode::send_with_imm;
  swr.imm = 0xABCD1234;
  swr.sge = {{sbuf.addr, 16, sbuf.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, swr).is_ok());
  Cqe rcqe = wait_cqe(*ctx_b_, cq_b_);
  EXPECT_TRUE(rcqe.has_imm);
  EXPECT_EQ(rcqe.imm, 0xABCD1234u);
}

TEST_F(RnicTest, SendWithoutRecvRetriesUntilRecvPosted) {
  auto [qa, qb] = connect_pair();
  auto sbuf = make_buf(*ctx_a_, pd_a_, 64);
  auto rbuf = make_buf(*ctx_b_, pd_b_, 64);
  SendWr swr;
  swr.opcode = WrOpcode::send;
  swr.sge = {{sbuf.addr, 16, sbuf.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, swr).is_ok());
  // Run a while: no recv posted, so no completion yet (RNR retry loop).
  world_.loop().run_until(world_.loop().now() + sim::msec(1));
  Cqe cqe;
  EXPECT_EQ(ctx_a_->poll_cq(cq_a_, {&cqe, 1}), 0);
  // Now post the recv; the retry delivers it.
  RecvWr rwr;
  rwr.sge = {{rbuf.addr, 64, rbuf.mr.lkey}};
  ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());
  Cqe rcqe = wait_cqe(*ctx_b_, cq_b_, sim::msec(50));
  EXPECT_EQ(rcqe.status, CqeStatus::success);
}

TEST_F(RnicTest, UnsignaledSendProducesNoCqe) {
  auto [qa, qb] = connect_pair();
  auto sbuf = make_buf(*ctx_a_, pd_a_, 64);
  auto rbuf = make_buf(*ctx_b_, pd_b_, 64);
  RecvWr rwr;
  rwr.sge = {{rbuf.addr, 64, rbuf.mr.lkey}};
  ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());
  SendWr swr;
  swr.opcode = WrOpcode::send;
  swr.signaled = false;
  swr.sge = {{sbuf.addr, 16, sbuf.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, swr).is_ok());
  wait_cqe(*ctx_b_, cq_b_);  // receive side completes
  Cqe cqe;
  EXPECT_EQ(ctx_a_->poll_cq(cq_a_, {&cqe, 1}), 0);
}

// ---------------------------------------------------------------------------
// One-sided WRITE / READ / ATOMIC
// ---------------------------------------------------------------------------

TEST_F(RnicTest, RdmaWrite) {
  auto [qa, qb] = connect_pair();
  const std::size_t size = 2 * 4096 + 17;
  auto src = make_buf(*ctx_a_, pd_a_, size);
  auto dst = make_buf(*ctx_b_, pd_b_, size);
  fill_pattern(*proc_a_, src.addr, size, 42);

  SendWr wr;
  wr.wr_id = 5;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = dst.addr;
  wr.rkey = dst.mr.rkey;
  wr.sge = {{src.addr, static_cast<std::uint32_t>(size), src.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  Cqe cqe = wait_cqe(*ctx_a_, cq_a_);
  EXPECT_EQ(cqe.status, CqeStatus::success);
  EXPECT_EQ(cqe.opcode, CqeOpcode::rdma_write);
  expect_pattern(*proc_b_, dst.addr, size, 42);
  // One-sided: no CQE on the passive side.
  Cqe none;
  EXPECT_EQ(ctx_b_->poll_cq(cq_b_, {&none, 1}), 0);
}

TEST_F(RnicTest, RdmaWriteDirtiesTargetPages) {
  auto [qa, qb] = connect_pair();
  auto src = make_buf(*ctx_a_, pd_a_, 4096);
  auto dst = make_buf(*ctx_b_, pd_b_, 4096);
  proc_b_->mem().collect_dirty();  // clear
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = dst.addr;
  wr.rkey = dst.mr.rkey;
  wr.sge = {{src.addr, 100, src.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  wait_cqe(*ctx_a_, cq_a_);
  // The NIC dirtied the page behind the application's back: this is what
  // pre-copy must chase during migration.
  EXPECT_EQ(proc_b_->mem().collect_dirty().size(), 1u);
}

TEST_F(RnicTest, RdmaWriteWithImmConsumesRecv) {
  auto [qa, qb] = connect_pair();
  auto src = make_buf(*ctx_a_, pd_a_, 64);
  auto dst = make_buf(*ctx_b_, pd_b_, 64);
  RecvWr rwr;
  rwr.wr_id = 31;
  ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write_with_imm;
  wr.imm = 77;
  wr.remote_addr = dst.addr;
  wr.rkey = dst.mr.rkey;
  wr.sge = {{src.addr, 32, src.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  Cqe rcqe = wait_cqe(*ctx_b_, cq_b_);
  EXPECT_EQ(rcqe.wr_id, 31u);
  EXPECT_TRUE(rcqe.has_imm);
  EXPECT_EQ(rcqe.imm, 77u);
  EXPECT_EQ(rcqe.byte_len, 32u);
  wait_cqe(*ctx_a_, cq_a_);
}

TEST_F(RnicTest, RdmaRead) {
  auto [qa, qb] = connect_pair();
  const std::size_t size = 4096 + 100;
  auto local = make_buf(*ctx_a_, pd_a_, size);
  auto remote = make_buf(*ctx_b_, pd_b_, size);
  fill_pattern(*proc_b_, remote.addr, size, 99);

  SendWr wr;
  wr.opcode = WrOpcode::rdma_read;
  wr.remote_addr = remote.addr;
  wr.rkey = remote.mr.rkey;
  wr.sge = {{local.addr, static_cast<std::uint32_t>(size), local.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  Cqe cqe = wait_cqe(*ctx_a_, cq_a_);
  EXPECT_EQ(cqe.opcode, CqeOpcode::rdma_read);
  EXPECT_EQ(cqe.byte_len, size);
  expect_pattern(*proc_a_, local.addr, size, 99);
}

TEST_F(RnicTest, AtomicFetchAndAdd) {
  auto [qa, qb] = connect_pair();
  auto local = make_buf(*ctx_a_, pd_a_, 4096);
  auto remote = make_buf(*ctx_b_, pd_b_, 4096);
  std::uint64_t initial = 1000;
  ASSERT_TRUE(proc_b_->mem()
                  .write(remote.addr, {reinterpret_cast<std::uint8_t*>(&initial), 8})
                  .is_ok());
  SendWr wr;
  wr.opcode = WrOpcode::atomic_fetch_and_add;
  wr.remote_addr = remote.addr;
  wr.rkey = remote.mr.rkey;
  wr.compare_add = 5;
  wr.sge = {{local.addr, 8, local.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  Cqe cqe = wait_cqe(*ctx_a_, cq_a_);
  EXPECT_EQ(cqe.opcode, CqeOpcode::atomic);
  // Original value lands in the local SGE.
  std::uint64_t fetched = 0;
  ASSERT_TRUE(proc_a_->mem().read(local.addr, {reinterpret_cast<std::uint8_t*>(&fetched), 8}).is_ok());
  EXPECT_EQ(fetched, 1000u);
  std::uint64_t updated = 0;
  ASSERT_TRUE(proc_b_->mem().read(remote.addr, {reinterpret_cast<std::uint8_t*>(&updated), 8}).is_ok());
  EXPECT_EQ(updated, 1005u);
}

TEST_F(RnicTest, AtomicCompareAndSwap) {
  auto [qa, qb] = connect_pair();
  auto local = make_buf(*ctx_a_, pd_a_, 4096);
  auto remote = make_buf(*ctx_b_, pd_b_, 4096);
  std::uint64_t initial = 7;
  ASSERT_TRUE(proc_b_->mem().write(remote.addr, {reinterpret_cast<std::uint8_t*>(&initial), 8}).is_ok());
  SendWr wr;
  wr.opcode = WrOpcode::atomic_cmp_and_swp;
  wr.remote_addr = remote.addr;
  wr.rkey = remote.mr.rkey;
  wr.compare_add = 7;   // expected
  wr.swap = 123;        // new value
  wr.sge = {{local.addr, 8, local.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  wait_cqe(*ctx_a_, cq_a_);
  std::uint64_t updated = 0;
  ASSERT_TRUE(proc_b_->mem().read(remote.addr, {reinterpret_cast<std::uint8_t*>(&updated), 8}).is_ok());
  EXPECT_EQ(updated, 123u);

  // Failed CAS leaves memory unchanged.
  wr.compare_add = 7;
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  wait_cqe(*ctx_a_, cq_a_);
  ASSERT_TRUE(proc_b_->mem().read(remote.addr, {reinterpret_cast<std::uint8_t*>(&updated), 8}).is_ok());
  EXPECT_EQ(updated, 123u);
}

TEST_F(RnicTest, BadRkeyFailsTheQp) {
  auto [qa, qb] = connect_pair();
  auto src = make_buf(*ctx_a_, pd_a_, 64);
  SendWr wr;
  wr.wr_id = 66;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = 0x1000;
  wr.rkey = 0xBAD;
  wr.sge = {{src.addr, 32, src.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  Cqe cqe = wait_cqe(*ctx_a_, cq_a_);
  EXPECT_EQ(cqe.wr_id, 66u);
  EXPECT_EQ(cqe.status, CqeStatus::remote_access_err);
  EXPECT_EQ(ctx_a_->query_qp_state(qa).value(), QpState::err);
}

TEST_F(RnicTest, RemoteReadDeniedWithoutAccess) {
  auto [qa, qb] = connect_pair();
  auto local = make_buf(*ctx_a_, pd_a_, 64);
  auto remote = make_buf(*ctx_b_, pd_b_, 64, kAccessLocalWrite);  // no remote read
  SendWr wr;
  wr.opcode = WrOpcode::rdma_read;
  wr.remote_addr = remote.addr;
  wr.rkey = remote.mr.rkey;
  wr.sge = {{local.addr, 32, local.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  Cqe cqe = wait_cqe(*ctx_a_, cq_a_);
  EXPECT_EQ(cqe.status, CqeStatus::remote_access_err);
}

TEST_F(RnicTest, WriteOutOfBoundsDenied) {
  auto [qa, qb] = connect_pair();
  auto src = make_buf(*ctx_a_, pd_a_, 8192);
  auto dst = make_buf(*ctx_b_, pd_b_, 4096);
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = dst.addr + 4000;  // runs past the MR
  wr.rkey = dst.mr.rkey;
  wr.sge = {{src.addr, 200, src.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  Cqe cqe = wait_cqe(*ctx_a_, cq_a_);
  EXPECT_EQ(cqe.status, CqeStatus::remote_access_err);
}

// ---------------------------------------------------------------------------
// Ordering, loss recovery
// ---------------------------------------------------------------------------

TEST_F(RnicTest, CompletionsInPostingOrder) {
  auto [qa, qb] = connect_pair();
  auto src = make_buf(*ctx_a_, pd_a_, 1 << 20);
  auto dst = make_buf(*ctx_b_, pd_b_, 1 << 20);
  for (std::uint64_t i = 0; i < 32; ++i) {
    SendWr wr;
    wr.wr_id = i;
    wr.opcode = WrOpcode::rdma_write;
    wr.remote_addr = dst.addr + i * 1024;
    wr.rkey = dst.mr.rkey;
    wr.sge = {{src.addr + i * 1024, 1024, src.mr.lkey}};
    ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  }
  for (std::uint64_t i = 0; i < 32; ++i) {
    Cqe cqe = wait_cqe(*ctx_a_, cq_a_);
    ASSERT_EQ(cqe.wr_id, i);
  }
}

TEST_F(RnicTest, LossRecoveryDeliversEverythingInOrder) {
  world_.fabric().set_faults(net::Faults{.data_loss_prob = 0.05});
  auto [qa, qb] = connect_pair(QpCaps{.max_send_wr = 256, .max_recv_wr = 256});
  auto sbuf = make_buf(*ctx_a_, pd_a_, 256 * 512);
  auto rbuf = make_buf(*ctx_b_, pd_b_, 256 * 512);
  // 100 sends, wr_id carries the sequence; receiver must see 0..99 in order.
  for (std::uint64_t i = 0; i < 100; ++i) {
    RecvWr rwr;
    rwr.wr_id = i;
    rwr.sge = {{rbuf.addr + i * 512, 512, rbuf.mr.lkey}};
    ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> marker(8);
    std::memcpy(marker.data(), &i, 8);
    ASSERT_TRUE(proc_a_->mem().write(sbuf.addr + i * 512, marker).is_ok());
    SendWr wr;
    wr.wr_id = i;
    wr.opcode = WrOpcode::send;
    wr.sge = {{sbuf.addr + i * 512, 512, sbuf.mr.lkey}};
    ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    Cqe cqe = wait_cqe(*ctx_b_, cq_b_, sim::sec(5));
    ASSERT_EQ(cqe.status, CqeStatus::success);
    ASSERT_EQ(cqe.wr_id, i) << "out of order or lost";
    std::uint64_t marker = 0;
    ASSERT_TRUE(proc_b_->mem().read(rbuf.addr + i * 512, {reinterpret_cast<std::uint8_t*>(&marker), 8}).is_ok());
    ASSERT_EQ(marker, i) << "content corrupted";
  }
  EXPECT_GT(dev_a_->counters().retransmits + dev_b_->counters().out_of_sequence, 0u);
}

TEST_F(RnicTest, PartitionExhaustsRetriesAndErrorsQp) {
  auto [qa, qb] = connect_pair();
  auto src = make_buf(*ctx_a_, pd_a_, 64);
  auto dst = make_buf(*ctx_b_, pd_b_, 64);
  world_.fabric().set_partitioned(2, true);
  Qpn errored = 0;
  ctx_a_->set_qp_error_handler([&](Qpn q) { errored = q; });
  SendWr wr;
  wr.wr_id = 1;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = dst.addr;
  wr.rkey = dst.mr.rkey;
  wr.sge = {{src.addr, 32, src.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  // 7 retries x 50 ms timeout before the QP gives up.
  world_.loop().run_until(world_.loop().now() + sim::msec(500));
  EXPECT_EQ(errored, qa);
  EXPECT_EQ(ctx_a_->query_qp_state(qa).value(), QpState::err);
  Cqe cqe;
  ASSERT_EQ(ctx_a_->poll_cq(cq_a_, {&cqe, 1}), 1);
  EXPECT_EQ(cqe.status, CqeStatus::retry_exceeded);
}

// ---------------------------------------------------------------------------
// SRQ, UD, completion channels, MW, DM
// ---------------------------------------------------------------------------

TEST_F(RnicTest, SrqSharedAcrossQps) {
  Handle srq = ctx_b_->create_srq(pd_b_, 64).value();
  QpInitAttr attr_b{QpType::rc, pd_b_, cq_b_, cq_b_, srq, {}};
  QpInitAttr attr_a{QpType::rc, pd_a_, cq_a_, cq_a_, 0, {}};
  Qpn qb1 = ctx_b_->create_qp(attr_b).value();
  Qpn qb2 = ctx_b_->create_qp(attr_b).value();
  Qpn qa1 = ctx_a_->create_qp(attr_a).value();
  Qpn qa2 = ctx_a_->create_qp(attr_a).value();
  ASSERT_TRUE(rc_connect(*ctx_a_, qa1, *ctx_b_, qb1).is_ok());
  ASSERT_TRUE(rc_connect(*ctx_a_, qa2, *ctx_b_, qb2).is_ok());

  auto sbuf = make_buf(*ctx_a_, pd_a_, 4096);
  auto rbuf = make_buf(*ctx_b_, pd_b_, 4096);
  for (int i = 0; i < 2; ++i) {
    RecvWr rwr;
    rwr.wr_id = 70 + static_cast<std::uint64_t>(i);
    rwr.sge = {{rbuf.addr + static_cast<std::uint64_t>(i) * 1024, 1024, rbuf.mr.lkey}};
    ASSERT_TRUE(ctx_b_->post_srq_recv(srq, rwr).is_ok());
  }
  // Posting directly to a QP that uses an SRQ is an error.
  EXPECT_EQ(ctx_b_->post_recv(qb1, RecvWr{}).code(), Errc::invalid_argument);

  SendWr wr;
  wr.opcode = WrOpcode::send;
  wr.sge = {{sbuf.addr, 128, sbuf.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa1, wr).is_ok());
  ASSERT_TRUE(ctx_a_->post_send(qa2, wr).is_ok());
  Cqe c1 = wait_cqe(*ctx_b_, cq_b_);
  Cqe c2 = wait_cqe(*ctx_b_, cq_b_);
  // Both QPs delivered, each consuming one SRQ WQE; CQE carries the QPN.
  EXPECT_NE(c1.qpn, c2.qpn);
  EXPECT_TRUE((c1.qpn == qb1 && c2.qpn == qb2) || (c1.qpn == qb2 && c2.qpn == qb1));
}

TEST_F(RnicTest, UdSendRecvCarriesSrcQp) {
  QpInitAttr attr_a{QpType::ud, pd_a_, cq_a_, cq_a_, 0, {}};
  QpInitAttr attr_b{QpType::ud, pd_b_, cq_b_, cq_b_, 0, {}};
  Qpn qa = ctx_a_->create_qp(attr_a).value();
  Qpn qb = ctx_b_->create_qp(attr_b).value();
  ASSERT_TRUE(ctx_a_->modify_qp_init(qa).is_ok());
  ASSERT_TRUE(ctx_a_->modify_qp_rtr(qa, 0, 0, 0).is_ok());
  ASSERT_TRUE(ctx_a_->modify_qp_rts(qa, 0).is_ok());
  ASSERT_TRUE(ctx_b_->modify_qp_init(qb).is_ok());
  ASSERT_TRUE(ctx_b_->modify_qp_rtr(qb, 0, 0, 0).is_ok());
  ASSERT_TRUE(ctx_b_->modify_qp_rts(qb, 0).is_ok());

  auto sbuf = make_buf(*ctx_a_, pd_a_, 4096);
  auto rbuf = make_buf(*ctx_b_, pd_b_, 4096);
  RecvWr rwr;
  rwr.sge = {{rbuf.addr, 4096, rbuf.mr.lkey}};
  ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());

  SendWr wr;
  wr.opcode = WrOpcode::send;
  wr.remote_host = 2;
  wr.remote_qpn = qb;
  wr.sge = {{sbuf.addr, 256, sbuf.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  Cqe scqe = wait_cqe(*ctx_a_, cq_a_);
  EXPECT_EQ(scqe.status, CqeStatus::success);
  Cqe rcqe = wait_cqe(*ctx_b_, cq_b_);
  EXPECT_EQ(rcqe.src_qp, qa);
  EXPECT_EQ(rcqe.byte_len, 256u);
}

TEST_F(RnicTest, UdOversizeMessageRejected) {
  QpInitAttr attr{QpType::ud, pd_a_, cq_a_, cq_a_, 0, {}};
  Qpn qa = ctx_a_->create_qp(attr).value();
  ASSERT_TRUE(ctx_a_->modify_qp_init(qa).is_ok());
  ASSERT_TRUE(ctx_a_->modify_qp_rtr(qa, 0, 0, 0).is_ok());
  ASSERT_TRUE(ctx_a_->modify_qp_rts(qa, 0).is_ok());
  auto sbuf = make_buf(*ctx_a_, pd_a_, 8192);
  SendWr wr;
  wr.opcode = WrOpcode::send;
  wr.remote_host = 2;
  wr.remote_qpn = 1;
  wr.sge = {{sbuf.addr, 8000, sbuf.mr.lkey}};
  EXPECT_EQ(ctx_a_->post_send(qa, wr).code(), Errc::invalid_argument);
}

TEST_F(RnicTest, CompletionChannelEventOnArm) {
  Handle ch = ctx_b_->create_comp_channel().value();
  Handle cq = ctx_b_->create_cq(64, ch).value();
  QpInitAttr attr_b{QpType::rc, pd_b_, cq, cq, 0, {}};
  QpInitAttr attr_a{QpType::rc, pd_a_, cq_a_, cq_a_, 0, {}};
  Qpn qb = ctx_b_->create_qp(attr_b).value();
  Qpn qa = ctx_a_->create_qp(attr_a).value();
  ASSERT_TRUE(rc_connect(*ctx_a_, qa, *ctx_b_, qb).is_ok());

  auto sbuf = make_buf(*ctx_a_, pd_a_, 64);
  auto rbuf = make_buf(*ctx_b_, pd_b_, 64);
  RecvWr rwr;
  rwr.sge = {{rbuf.addr, 64, rbuf.mr.lkey}};
  ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());
  ASSERT_TRUE(ctx_b_->req_notify_cq(cq).is_ok());
  EXPECT_FALSE(ctx_b_->get_cq_event(ch).has_value());

  SendWr wr;
  wr.opcode = WrOpcode::send;
  wr.sge = {{sbuf.addr, 16, sbuf.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  world_.loop().run_until(world_.loop().now() + sim::msec(1));

  auto ev = ctx_b_->get_cq_event(ch);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(*ev, cq);
  ctx_b_->ack_cq_events(ch, 1);
  // One event per arm: a second completion without re-arming emits nothing.
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  world_.loop().run_until(world_.loop().now() + sim::msec(1));
  EXPECT_FALSE(ctx_b_->get_cq_event(ch).has_value());
}

TEST_F(RnicTest, MemoryWindowBindAndRemoteUse) {
  auto [qa, qb] = connect_pair();
  auto src = make_buf(*ctx_a_, pd_a_, 4096);
  auto dst = make_buf(*ctx_b_, pd_b_, 8192,
                      kAccessLocalWrite | kAccessRemoteWrite | kAccessMwBind);
  Handle mw = ctx_b_->alloc_mw(pd_b_).value();
  // Window covers only the second KB of the MR.
  auto rkey = ctx_b_->bind_mw(qb, mw, dst.mr.lkey, dst.addr + 1024, 1024,
                              kAccessRemoteWrite, /*wr_id=*/500);
  ASSERT_TRUE(rkey.is_ok());
  Cqe bind_cqe = wait_cqe(*ctx_b_, cq_b_);
  EXPECT_EQ(bind_cqe.opcode, CqeOpcode::bind_mw);
  EXPECT_EQ(bind_cqe.wr_id, 500u);

  // Write inside the window: ok.
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = dst.addr + 1024;
  wr.rkey = rkey.value();
  wr.sge = {{src.addr, 512, src.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  EXPECT_EQ(wait_cqe(*ctx_a_, cq_a_).status, CqeStatus::success);

  // Write outside the window with the MW rkey: remote access error.
  wr.remote_addr = dst.addr;  // before the window
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  EXPECT_EQ(wait_cqe(*ctx_a_, cq_a_).status, CqeStatus::remote_access_err);
}

TEST_F(RnicTest, MwBindRequiresMwBindAccessOnMr) {
  auto [qa, qb] = connect_pair();
  auto dst = make_buf(*ctx_b_, pd_b_, 4096, kAccessLocalWrite | kAccessRemoteWrite);
  Handle mw = ctx_b_->alloc_mw(pd_b_).value();
  auto rkey = ctx_b_->bind_mw(qb, mw, dst.mr.lkey, dst.addr, 1024, kAccessRemoteWrite, 1);
  EXPECT_EQ(rkey.code(), Errc::permission_denied);
}

TEST_F(RnicTest, DeviceMemoryAllocMapAndUse) {
  const std::uint64_t dm_size = 8192;
  auto dm = ctx_a_->alloc_dm(dm_size);
  ASSERT_TRUE(dm.is_ok());
  EXPECT_TRUE(proc_a_->mem().mapped(dm->mapped_at, dm_size));
  // Register an MR over the on-chip memory and use it as a send source.
  auto mr = ctx_a_->reg_mr(pd_a_, dm->mapped_at, dm_size, kAccessLocalWrite);
  ASSERT_TRUE(mr.is_ok());
  EXPECT_LT(dev_a_->device_memory_free(), dev_a_->config().device_memory_bytes);
  ASSERT_TRUE(ctx_a_->free_dm(dm->handle).is_ok());
  EXPECT_EQ(dev_a_->device_memory_free(), dev_a_->config().device_memory_bytes);
}

TEST_F(RnicTest, DeviceMemoryExhaustion) {
  auto r1 = ctx_a_->alloc_dm(dev_a_->config().device_memory_bytes);
  ASSERT_TRUE(r1.is_ok());
  EXPECT_EQ(ctx_a_->alloc_dm(4096).code(), Errc::resource_exhausted);
}

// ---------------------------------------------------------------------------
// Opaqueness + counters (the paper's premise)
// ---------------------------------------------------------------------------

TEST_F(RnicTest, CommodityHardwareRefusesStateExtraction) {
  auto [qa, qb] = connect_pair();
  EXPECT_EQ(dev_a_->migros_extract_qp(qa).code(), Errc::failed_precondition);
  EXPECT_EQ(dev_a_->migros_inject_qp(qa, MigrosQpState{}).code(), Errc::failed_precondition);
}

TEST_F(RnicTest, MigrationAwareHardwareAllowsIt) {
  DeviceConfig cfg;
  cfg.migration_aware_hw = true;
  Device& d = world_.add_device(8, cfg);
  auto& p = world_.add_process("p8");
  Context* ctx = d.open(p).value();
  Handle pd = ctx->alloc_pd().value();
  Handle cq = ctx->create_cq(16).value();
  Qpn q = ctx->create_qp({QpType::rc, pd, cq, cq, 0, {}}).value();
  auto st = d.migros_extract_qp(q);
  ASSERT_TRUE(st.is_ok());
  EXPECT_TRUE(d.migros_inject_qp(q, st.value()).is_ok());
}

TEST_F(RnicTest, PortCountersTrackBytes) {
  auto [qa, qb] = connect_pair();
  auto src = make_buf(*ctx_a_, pd_a_, 1 << 16);
  auto dst = make_buf(*ctx_b_, pd_b_, 1 << 16);
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = dst.addr;
  wr.rkey = dst.mr.rkey;
  wr.sge = {{src.addr, 1 << 16, src.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  wait_cqe(*ctx_a_, cq_a_);
  EXPECT_GE(dev_a_->counters().tx_bytes, 1u << 16);
  EXPECT_GE(dev_b_->counters().rx_bytes, 1u << 16);
}

TEST_F(RnicTest, NSentNRecvCountersForWbs) {
  auto [qa, qb] = connect_pair();
  auto sbuf = make_buf(*ctx_a_, pd_a_, 4096);
  auto rbuf = make_buf(*ctx_b_, pd_b_, 4096);
  for (int i = 0; i < 3; ++i) {
    RecvWr rwr;
    rwr.sge = {{rbuf.addr, 1024, rbuf.mr.lkey}};
    ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());
  }
  for (int i = 0; i < 2; ++i) {
    SendWr wr;
    wr.opcode = WrOpcode::send;
    wr.sge = {{sbuf.addr, 64, sbuf.mr.lkey}};
    ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  }
  world_.loop().run_until(world_.loop().now() + sim::msec(1));
  EXPECT_EQ(ctx_a_->find_qp(qa)->n_sent, 2u);
  EXPECT_EQ(ctx_b_->find_qp(qb)->n_recv, 2u);
  // One RECV remains posted with no matching send: an "inflight RECV" that
  // wait-before-stop must replay after migration (§3.4).
  EXPECT_EQ(ctx_b_->find_qp(qb)->rq.size(), 1u);
}

}  // namespace
}  // namespace migr::rnic
