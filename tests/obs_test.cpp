// Unified telemetry layer: registry semantics, histogram percentile edges,
// trace JSON well-formedness, and the cross-check that the phase spans a
// seeded migration emits reproduce MigrationReport's blackout breakdown
// field-for-field.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/perftest.hpp"
#include "migr/migration.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rnic/world.hpp"

namespace migr::obs {
namespace {

// With -DMIGR_OBS_DISABLE=ON the whole layer is compiled to no-ops, so tests
// that assert recorded values cannot pass by design; skip them cleanly.
#ifdef MIGR_OBS_DISABLED
#define SKIP_IF_OBS_DISABLED() \
  GTEST_SKIP() << "obs layer compiled out (MIGR_OBS_DISABLE=ON)"
#else
#define SKIP_IF_OBS_DISABLED() (void)0
#endif

// ---------------------------------------------------------------------------
// Registry / counter / label semantics
// ---------------------------------------------------------------------------

TEST(RegistryTest, CounterIncrementsAndResolvesOnce) {
  SKIP_IF_OBS_DISABLED();
  Registry reg;
  Counter& c = reg.counter("test.hits");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same cell.
  EXPECT_EQ(&reg.counter("test.hits"), &c);
  EXPECT_EQ(reg.counter("test.hits").value(), 42u);
}

TEST(RegistryTest, LabelsMakeDistinctInstruments) {
  SKIP_IF_OBS_DISABLED();
  Registry reg;
  Counter& a = reg.counter("link.bytes", {{"link", "1-2"}});
  Counter& b = reg.counter("link.bytes", {{"link", "2-1"}});
  EXPECT_NE(&a, &b);
  a.inc(10);
  b.inc(20);
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "link.bytes{link=1-2}");
  EXPECT_EQ(snap[0].value, 10.0);
  EXPECT_EQ(snap[1].name, "link.bytes{link=2-1}");
  EXPECT_EQ(snap[1].value, 20.0);
}

TEST(RegistryTest, RenderNameFormatsLabels) {
  EXPECT_EQ(Registry::render_name("n", {}), "n");
  EXPECT_EQ(Registry::render_name("n", {{"a", "1"}, {"b", "x"}}), "n{a=1,b=x}");
}

TEST(RegistryTest, SourcesArePolledAtSnapshotAndUnregister) {
  Registry reg;
  double v = 7;
  auto id = reg.register_source("src", {{"host", "1"}}, [&] {
    return std::vector<std::pair<std::string, double>>{{"field", v}};
  });
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "src{host=1}.field");
  EXPECT_EQ(snap[0].value, 7.0);
  v = 8;  // polled, not copied
  EXPECT_EQ(reg.snapshot()[0].value, 8.0);
  reg.unregister_source(id);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(RegistryTest, ResetZeroesInstrumentsButKeepsThem) {
  Registry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  c.inc(5);
  g.set(3.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(&reg.counter("c"), &c);
}

TEST(RegistryTest, DisabledRegistryHandsOutDummies) {
  Registry reg;
  reg.set_enabled(false);
  Counter& c = reg.counter("hidden");
  c.inc(99);
  EXPECT_TRUE(reg.snapshot().empty());
}

// ---------------------------------------------------------------------------
// Histogram percentile edges
// ---------------------------------------------------------------------------

// record() is the always-on library verb, so these tests run even with
// MIGR_OBS_DISABLE=ON (only the registry-facing observe() is compiled out).

TEST(HistogramTest, EmptyHistogramReportsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0), 0);
  EXPECT_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.percentile(100), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_TRUE(h.exact());
}

TEST(HistogramTest, ExactModeReproducesNearestRankExactly) {
  Histogram h;
  // The DrainReport formula: rank = ceil(p/100*n) clamped to [1,n],
  // answer = sorted[rank-1]. Values chosen to straddle bucket boundaries.
  for (std::int64_t v : {731, 12, 99841, 5, 731, 64, 63}) h.record(v);
  // sorted: 5 12 63 64 731 731 99841 (n=7)
  EXPECT_EQ(h.percentile(0), 5);     // rank clamps up to 1
  EXPECT_EQ(h.percentile(50), 64);   // ceil(3.5) = 4
  EXPECT_EQ(h.percentile(99), 99841);
  EXPECT_EQ(h.percentile(100), 99841);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 99841);
  EXPECT_TRUE(h.exact());
}

TEST(HistogramTest, SubMinimumValuesClampToBucketZero) {
  Histogram h;
  h.record(-50);  // below the representable range
  h.record(3);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), -50);           // true min survives
  EXPECT_EQ(h.percentile(1), -50);   // exact mode: the raw sample
  EXPECT_EQ(h.bucket_count(0), 1u);  // but bucketed as 0
}

TEST(HistogramTest, OverMaximumValuesLandInTopBucketWithExactMax) {
  Histogram h(/*exact_capacity=*/1);
  const std::int64_t huge = std::int64_t{1} << 62;
  h.record(huge + 12345);
  h.record(7);  // spills the 1-sample reservoir -> bucketed mode
  EXPECT_FALSE(h.exact());
  EXPECT_EQ(h.max(), huge + 12345);
  // Bucketed p100 would report a bucket bound; it must clamp to max.
  EXPECT_EQ(h.percentile(100), huge + 12345);
  EXPECT_EQ(h.percentile(1), 7);  // clamped up to the observed min
}

TEST(HistogramTest, SketchModeBoundsRelativeError) {
  Histogram h(/*exact_capacity=*/0);  // force bucketed answers immediately
  for (std::int64_t v = 1; v <= 100000; v += 7) h.record(v);
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const double exact = p / 100.0 * 100000.0;
    const double got = static_cast<double>(h.percentile(p));
    EXPECT_GE(got, exact * 0.96) << "p" << p;
    EXPECT_LE(got, exact * 1.04) << "p" << p;
  }
}

TEST(HistogramTest, MergeOfDisjointRangesCoversBoth) {
  Histogram lo(/*exact_capacity=*/0), hi(/*exact_capacity=*/0);
  for (int i = 0; i < 100; ++i) lo.record(10 + i % 5);
  for (int i = 0; i < 100; ++i) hi.record(1'000'000 + i);
  lo.merge(hi);
  EXPECT_EQ(lo.count(), 200u);
  EXPECT_EQ(lo.min(), 10);
  EXPECT_EQ(lo.max(), 1'000'099);
  EXPECT_LE(lo.percentile(25), 14);        // low half intact
  EXPECT_GE(lo.percentile(75), 1'000'000);  // high half intact
}

TEST(HistogramTest, MergeKeepsExactModeWhileSamplesFit) {
  Histogram a, b;
  for (std::int64_t v : {1, 5, 9}) a.record(v);
  for (std::int64_t v : {2, 6}) b.record(v);
  a.merge(b);
  ASSERT_TRUE(a.exact());
  // sorted: 1 2 5 6 9 -> p50 = ceil(2.5)=3rd = 5
  EXPECT_EQ(a.percentile(50), 5);
  EXPECT_EQ(a.count(), 5u);
}

TEST(HistogramTest, MergeIntoEmptyAndReset) {
  Histogram a, b;
  b.record(42);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.percentile(50), 42);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.percentile(99), 0);
  EXPECT_TRUE(a.exact());
  a.record(7);  // usable again after reset
  EXPECT_EQ(a.percentile(50), 7);
}

TEST(HistogramTest, ReservoirSpillDegradesGracefully) {
  Histogram h(/*exact_capacity=*/64);
  for (std::int64_t v = 1; v <= 64; ++v) h.record(v);
  EXPECT_TRUE(h.exact());
  EXPECT_EQ(h.percentile(50), 32);  // exact
  h.record(65);  // spill
  EXPECT_FALSE(h.exact());
  // Bucketed now, but values <= 63 have exact unit buckets so small
  // percentiles stay exact and the top is clamped to max.
  EXPECT_EQ(h.percentile(1), 1);
  EXPECT_EQ(h.percentile(100), 65);
  EXPECT_EQ(h.count(), 65u);
}

// ---------------------------------------------------------------------------
// Tracer: ring semantics and Chrome JSON export
// ---------------------------------------------------------------------------

// Minimal JSON parser: enough for the trace-event format we emit (objects,
// arrays, strings with escapes, numbers, bools). Parsing the export with it
// is the well-formedness check.
struct Json {
  enum class Type { object, array, string, number, boolean, null } type = Type::null;
  std::map<std::string, Json> obj;
  std::vector<Json> arr;
  std::string str;
  double num = 0;
  bool b = false;

  const Json& at(const std::string& k) const {
    static const Json kNull;
    auto it = obj.find(k);
    return it == obj.end() ? kNull : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  bool parse(Json& out) { return value(out) && (skip_ws(), pos_ == s_.size()); }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      pos_++;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }
  bool value(Json& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.type = Json::Type::string; return string(out.str);
      case 't': out.type = Json::Type::boolean; out.b = true; return literal("true");
      case 'f': out.type = Json::Type::boolean; out.b = false; return literal("false");
      case 'n': out.type = Json::Type::null; return literal("null");
      default: out.type = Json::Type::number; return number(out.num);
    }
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool object(Json& out) {
    out.type = Json::Type::object;
    if (!consume('{')) return false;
    if (consume('}')) return true;
    for (;;) {
      std::string key;
      skip_ws();
      if (!string(key)) return false;
      if (!consume(':')) return false;
      Json v;
      if (!value(v)) return false;
      out.obj.emplace(std::move(key), std::move(v));
      if (consume(',')) continue;
      return consume('}');
    }
  }
  bool array(Json& out) {
    out.type = Json::Type::array;
    if (!consume('[')) return false;
    if (consume(']')) return true;
    for (;;) {
      Json v;
      if (!value(v)) return false;
      out.arr.push_back(std::move(v));
      if (consume(',')) continue;
      return consume(']');
    }
  }
  bool string(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    pos_++;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        pos_++;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': pos_ += 4; out += '?'; break;  // good enough for tests
          default: out += s_[pos_];
        }
      } else {
        out += s_[pos_];
      }
      pos_++;
    }
    if (pos_ >= s_.size()) return false;
    pos_++;  // closing quote
    return true;
  }
  bool number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) pos_++;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      pos_++;
    }
    if (pos_ == start) return false;
    out = std::stod(s_.substr(start, pos_ - start));
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer t(16);
  t.instant(100, "ev", "cat");
  EXPECT_EQ(t.size(), 0u);
}

TEST(TracerTest, RecordsAndOrdersEvents) {
  SKIP_IF_OBS_DISABLED();
  Tracer t(16);
  t.set_enabled(true);
  t.begin(100, "span", "cat");
  t.end(300, "span", "cat");
  t.instant(200, "mark", "cat");
  t.complete(400, 50, "block", "cat2");
  ASSERT_EQ(t.size(), 4u);
  auto evs = t.events();
  EXPECT_EQ(evs[0].ph, TraceEvent::Phase::begin);
  EXPECT_EQ(evs[1].ph, TraceEvent::Phase::end);
  EXPECT_EQ(evs[2].name, "mark");
  EXPECT_EQ(evs[3].dur_ns, 50);
  EXPECT_EQ(t.total_emitted(), 4u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, RingDropsOldestOnOverflow) {
  SKIP_IF_OBS_DISABLED();
  Tracer t(4);
  t.set_enabled(true);
  for (int i = 0; i < 10; ++i) t.instant(i, "e" + std::to_string(i), "c");
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_emitted(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  auto evs = t.events();
  EXPECT_EQ(evs.front().name, "e6");  // oldest survivor
  EXPECT_EQ(evs.back().name, "e9");
}

TEST(TracerTest, ChromeJsonParsesAndCarriesExactNs) {
  SKIP_IF_OBS_DISABLED();
  Tracer t(64);
  t.set_enabled(true);
  t.complete(1'234'567, 89'123, "phase \"x\"\n", "migr", "\"k\":7");
  t.instant(5'000'000, "mark", "rnic");

  Json root;
  ASSERT_TRUE(JsonParser(t.export_chrome_json()).parse(root));
  const Json& evs = root.at("traceEvents");
  ASSERT_EQ(evs.type, Json::Type::array);

  // Skip thread_name metadata; find our two events.
  const Json* complete = nullptr;
  const Json* instant = nullptr;
  for (const auto& e : evs.arr) {
    if (e.at("ph").str == "X") complete = &e;
    if (e.at("ph").str == "i") instant = &e;
  }
  ASSERT_NE(complete, nullptr);
  ASSERT_NE(instant, nullptr);
  EXPECT_EQ(complete->at("name").str, "phase \"x\"\n");  // escaping round-trips
  EXPECT_EQ(complete->at("ts").num, 1234.567);           // µs
  EXPECT_EQ(complete->at("dur").num, 89.123);
  EXPECT_EQ(complete->at("args").at("ts_ns").num, 1234567.0);  // exact ns
  EXPECT_EQ(complete->at("args").at("dur_ns").num, 89123.0);
  EXPECT_EQ(complete->at("args").at("k").num, 7.0);
  EXPECT_EQ(instant->at("cat").str, "rnic");
  // Different categories land on different tracks (tids).
  EXPECT_NE(complete->at("tid").num, instant->at("tid").num);
}

// ---------------------------------------------------------------------------
// End-to-end: spans of a seeded migration reproduce MigrationReport exactly
// ---------------------------------------------------------------------------

class ObsEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().set_clock(nullptr);
    Tracer::global().clear();
  }
};

TEST_F(ObsEndToEndTest, TracedSpansMatchMigrationReportFieldForField) {
  SKIP_IF_OBS_DISABLED();
  rnic::World world({}, /*seed=*/7);
  Tracer::global().set_clock(&world.loop());
  migrlib::GuestDirectory directory;
  std::vector<std::unique_ptr<migrlib::MigrRdmaRuntime>> rts;
  for (net::HostId h = 1; h <= 3; ++h) {
    rts.push_back(std::make_unique<migrlib::MigrRdmaRuntime>(directory, world.add_device(h),
                                                             world.fabric()));
  }

  apps::PerftestConfig cfg;
  cfg.num_qps = 4;
  cfg.msg_size = 4096;
  cfg.queue_depth = 8;
  apps::PerftestPeer sender(*rts[0], world.add_process("tx"), 100,
                            apps::PerftestPeer::Role::sender, cfg);
  apps::PerftestPeer receiver(*rts[2], world.add_process("rx"), 200,
                              apps::PerftestPeer::Role::receiver, cfg);
  for (std::uint32_t i = 0; i < cfg.num_qps; ++i) {
    ASSERT_TRUE(apps::PerftestPeer::connect_pair(sender, i, receiver, i).is_ok());
  }
  sender.start();
  receiver.start();
  world.loop().run_for(sim::msec(2));

  migrlib::MigrationController ctl(world.loop(), world.fabric(), directory, {});
  auto& dest = world.add_process("restored");
  migrlib::MigrationReport rep;
  bool done = false;
  ASSERT_TRUE(ctl.start(100, 2, dest, &sender, [&](const migrlib::MigrationReport& r) {
                   rep = r;
                   done = true;
                 })
                  .is_ok());
  while (!done && world.loop().now() < sim::sec(120)) world.loop().run_for(sim::msec(1));
  ASSERT_TRUE(rep.ok) << rep.error;

  // Parse the Chrome export and index the migration-phase complete-events
  // by name -> (ts_ns, dur_ns), using the exact integers carried in args.
  Json root;
  ASSERT_TRUE(JsonParser(Tracer::global().export_chrome_json()).parse(root));
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> spans;
  std::map<std::string, std::int64_t> instants;
  for (const auto& e : root.at("traceEvents").arr) {
    if (e.at("cat").str != "migr") continue;
    const std::string& name = e.at("name").str;
    if (e.at("ph").str == "X") {
      spans[name] = {static_cast<std::int64_t>(e.at("args").at("ts_ns").num),
                     static_cast<std::int64_t>(e.at("args").at("dur_ns").num)};
    } else if (e.at("ph").str == "i") {
      instants[name] = static_cast<std::int64_t>(e.at("args").at("ts_ns").num);
    }
  }

  // Every stop-and-copy step must be present...
  for (const char* required : {"pre_dump", "partial_restore", "rdma_pre_setup",
                               "wait_before_stop", "dump_others", "dump_rdma", "transfer",
                               "full_restore", "restore_rdma", "migration"}) {
    ASSERT_TRUE(spans.contains(required)) << "missing span: " << required;
  }
  for (const char* required : {"suspend", "freeze", "resume", "map_resources", "replay"}) {
    ASSERT_TRUE(instants.contains(required)) << "missing instant: " << required;
  }

  // ...and the durations must equal the report's blackout breakdown exactly.
  EXPECT_EQ(spans["dump_rdma"].second, rep.dump_rdma);
  EXPECT_EQ(spans["dump_others"].second, rep.dump_others);
  EXPECT_EQ(spans["transfer"].second, rep.transfer);
  EXPECT_EQ(spans["restore_rdma"].second, rep.restore_rdma);
  EXPECT_EQ(spans["full_restore"].second, rep.full_restore);
  EXPECT_EQ(spans["rdma_pre_setup"].second, rep.presetup_restore_rdma);
  EXPECT_EQ(spans["wait_before_stop"].second, rep.wbs_elapsed);
  EXPECT_EQ(spans["wait_before_stop"].first, rep.suspend_at);
  EXPECT_EQ(spans["migration"].first, rep.start);
  EXPECT_EQ(spans["migration"].second, rep.resume_at - rep.start);

  // Phase-boundary instants line up with the report timestamps.
  EXPECT_EQ(instants["suspend"], rep.suspend_at);
  EXPECT_EQ(instants["freeze"], rep.freeze_at);
  EXPECT_EQ(instants["resume"], rep.resume_at);

  // The stop-and-copy components tile [freeze, ...] back to back.
  EXPECT_EQ(spans["dump_others"].first, rep.freeze_at);
  EXPECT_EQ(spans["dump_rdma"].first, rep.freeze_at + rep.dump_others);
  EXPECT_EQ(spans["restore_rdma"].first,
            spans["full_restore"].first + rep.full_restore);

  // The registry gauges published at resume carry the same values.
  auto snap = Registry::global().snapshot();
  auto gauge = [&](const std::string& name) -> double {
    for (const auto& e : snap) {
      if (e.name == name) return e.value;
    }
    return -1;
  };
  EXPECT_EQ(gauge("migr.report.dump_rdma_ns"), static_cast<double>(rep.dump_rdma));
  EXPECT_EQ(gauge("migr.report.transfer_ns"), static_cast<double>(rep.transfer));
  EXPECT_EQ(gauge("migr.report.restore_rdma_ns"), static_cast<double>(rep.restore_rdma));
  EXPECT_EQ(gauge("migr.report.service_blackout_ns"),
            static_cast<double>(rep.service_blackout()));

  // The RNIC and fabric instrumented the traffic along the way.
  EXPECT_GT(gauge("rnic.wqe_posted{host=1}"), 0.0);
  EXPECT_GT(gauge("rnic.cqe_delivered{host=1}"), 0.0);
  EXPECT_GT(gauge("fabric.link.bytes{link=1-3}"), 0.0);
  EXPECT_GT(gauge("rnic.qp_transitions{host=1,to=rts}"), 0.0);
}

TEST_F(ObsEndToEndTest, EventLoopAccountsDispatchesInRegistry) {
  SKIP_IF_OBS_DISABLED();
  Registry::global().reset();
  sim::EventLoop loop;
  int fired = 0;
  loop.schedule_at(10, [&] { fired++; });
  loop.schedule_at(20, [&] { fired++; });
  loop.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.events_dispatched(), 2u);
  auto snap = Registry::global().snapshot();
  for (const auto& e : snap) {
    if (e.name == "sim.events_dispatched") {
      EXPECT_GE(e.value, 2.0);
    }
  }
}

}  // namespace
}  // namespace migr::obs
