#include <gtest/gtest.h>

#include "apps/minihadoop.hpp"
#include "apps/msg_node.hpp"
#include "apps/perftest.hpp"
#include "migr/migration.hpp"
#include "rnic/world.hpp"

namespace migr::apps {
namespace {

using migrlib::GuestDirectory;
using migrlib::MigrationController;
using migrlib::MigrationOptions;
using migrlib::MigrationReport;
using migrlib::MigrRdmaRuntime;

class AppsTest : public ::testing::Test {
 protected:
  AppsTest() {
    for (net::HostId h = 1; h <= 6; ++h) {
      devices_[h] = &world_.add_device(h);
      runtimes_[h] = std::make_unique<MigrRdmaRuntime>(directory_, *devices_[h],
                                                       world_.fabric());
    }
  }

  void run_for(sim::DurationNs d) { world_.loop().run_until(world_.loop().now() + d); }

  MigrationReport migrate(migrlib::GuestId id, net::HostId dest,
                          migrlib::MigratableApp* app, MigrationOptions opts = {}) {
    auto& dest_proc = world_.add_process("dest");
    MigrationController ctl(world_.loop(), world_.fabric(), directory_, opts);
    MigrationReport out;
    bool done = false;
    EXPECT_TRUE(
        ctl.start(id, dest, dest_proc, app, [&](const MigrationReport& r) {
             out = r;
             done = true;
           })
            .is_ok());
    const sim::TimeNs deadline = world_.loop().now() + sim::sec(60);
    while (!done && world_.loop().now() < deadline) run_for(sim::msec(1));
    EXPECT_TRUE(done);
    return out;
  }

  rnic::World world_;
  GuestDirectory directory_;
  std::unordered_map<net::HostId, rnic::Device*> devices_;
  std::unordered_map<net::HostId, std::unique_ptr<MigrRdmaRuntime>> runtimes_;
};

// ---------------------------------------------------------------------------
// perftest
// ---------------------------------------------------------------------------

TEST_F(AppsTest, PerftestWriteBandwidthReachesLineRate) {
  PerftestConfig cfg;
  cfg.num_qps = 4;
  cfg.msg_size = 65536;
  PerftestPeer tx(*runtimes_[1], world_.add_process("tx"), 100, PerftestPeer::Role::sender,
                  cfg);
  PerftestPeer rx(*runtimes_[2], world_.add_process("rx"), 200,
                  PerftestPeer::Role::receiver, cfg);
  for (std::uint32_t i = 0; i < cfg.num_qps; ++i) {
    ASSERT_TRUE(PerftestPeer::connect_pair(tx, i, rx, i).is_ok());
  }
  tx.start();
  rx.start();
  run_for(sim::msec(20));
  const double gbps = static_cast<double>(tx.stats().completed_bytes) * 8.0 /
                      static_cast<double>(sim::msec(20));
  EXPECT_GT(gbps, 80.0) << "should approach 100 Gbps line rate";
  EXPECT_EQ(tx.stats().errors, 0u);
  EXPECT_EQ(tx.stats().order_violations, 0u);
}

TEST_F(AppsTest, PerftestSendRecvVerifiesSequenceAndContent) {
  PerftestConfig cfg;
  cfg.num_qps = 2;
  cfg.msg_size = 4096;
  cfg.opcode = rnic::WrOpcode::send;
  cfg.max_messages_per_qp = 500;
  PerftestPeer tx(*runtimes_[1], world_.add_process("tx"), 100, PerftestPeer::Role::sender,
                  cfg);
  PerftestPeer rx(*runtimes_[2], world_.add_process("rx"), 200,
                  PerftestPeer::Role::receiver, cfg);
  for (std::uint32_t i = 0; i < cfg.num_qps; ++i) {
    ASSERT_TRUE(PerftestPeer::connect_pair(tx, i, rx, i).is_ok());
  }
  tx.start();
  rx.start();
  run_for(sim::msec(50));
  EXPECT_TRUE(tx.finished());
  EXPECT_EQ(tx.stats().completed_msgs, 1000u);
  EXPECT_EQ(rx.stats().recv_msgs, 1000u);
  EXPECT_EQ(rx.stats().order_violations, 0u);
  EXPECT_EQ(rx.stats().content_corruptions, 0u);
}

TEST_F(AppsTest, PerftestOneToManyPattern) {
  // The migrated container runs one perftest with n QPs; each of n partners
  // runs one QP (§5.4 / Fig. 4c).
  const std::uint32_t n = 4;
  PerftestConfig cfg;
  cfg.num_qps = n;
  cfg.msg_size = 16384;
  PerftestPeer hub(*runtimes_[1], world_.add_process("hub"), 100,
                   PerftestPeer::Role::sender, cfg);
  std::vector<std::unique_ptr<PerftestPeer>> partners;
  PerftestConfig pcfg = cfg;
  pcfg.num_qps = 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    partners.push_back(std::make_unique<PerftestPeer>(
        *runtimes_[2 + i], world_.add_process("p" + std::to_string(i)), 200 + i,
        PerftestPeer::Role::receiver, pcfg));
    ASSERT_TRUE(PerftestPeer::connect_pair(hub, i, *partners.back(), 0).is_ok());
  }
  hub.start();
  for (auto& p : partners) p->start();
  run_for(sim::msec(10));
  EXPECT_GT(hub.stats().completed_msgs, 100u);
  EXPECT_EQ(hub.stats().errors, 0u);
}

TEST_F(AppsTest, PerftestSurvivesMigrationWithNoCorruption) {
  PerftestConfig cfg;
  cfg.num_qps = 4;
  cfg.msg_size = 16384;
  cfg.opcode = rnic::WrOpcode::send;
  PerftestPeer tx(*runtimes_[1], world_.add_process("tx"), 100, PerftestPeer::Role::sender,
                  cfg);
  PerftestPeer rx(*runtimes_[3], world_.add_process("rx"), 200,
                  PerftestPeer::Role::receiver, cfg);
  for (std::uint32_t i = 0; i < cfg.num_qps; ++i) {
    ASSERT_TRUE(PerftestPeer::connect_pair(tx, i, rx, i).is_ok());
  }
  tx.start();
  rx.start();
  run_for(sim::msec(5));
  auto report = migrate(100, 2, &tx);  // migrate the sender under load
  ASSERT_TRUE(report.ok) << report.error;
  run_for(sim::msec(20));
  EXPECT_GT(tx.stats().completed_msgs, 0u);
  EXPECT_EQ(rx.stats().order_violations, 0u) << "§5.3: order preserved";
  EXPECT_EQ(rx.stats().content_corruptions, 0u) << "§5.3: content intact";
  EXPECT_EQ(rx.stats().errors, 0u);
  EXPECT_EQ(tx.stats().order_violations, 0u);
  // Traffic keeps flowing after migration.
  const auto before = rx.stats().recv_msgs;
  run_for(sim::msec(10));
  EXPECT_GT(rx.stats().recv_msgs, before);
}

TEST_F(AppsTest, ThroughputSamplerTracksTraffic) {
  PerftestConfig cfg;
  cfg.num_qps = 2;
  cfg.msg_size = 65536;
  PerftestPeer tx(*runtimes_[1], world_.add_process("tx"), 100, PerftestPeer::Role::sender,
                  cfg);
  PerftestPeer rx(*runtimes_[2], world_.add_process("rx"), 200,
                  PerftestPeer::Role::receiver, cfg);
  for (std::uint32_t i = 0; i < cfg.num_qps; ++i) {
    ASSERT_TRUE(PerftestPeer::connect_pair(tx, i, rx, i).is_ok());
  }
  ThroughputSampler sampler(world_.loop(), *devices_[2], sim::msec(5));
  sampler.start();
  tx.start();
  rx.start();
  run_for(sim::msec(50));
  sampler.stop();
  ASSERT_GE(sampler.samples().size(), 8u);
  double peak = 0;
  for (const auto& s : sampler.samples()) peak = std::max(peak, s.rx_gbps);
  EXPECT_GT(peak, 70.0);
}

// ---------------------------------------------------------------------------
// MsgNode
// ---------------------------------------------------------------------------

TEST_F(AppsTest, MsgNodeDelivery) {
  MsgNode a(*runtimes_[1], world_.add_process("a"), 100);
  MsgNode b(*runtimes_[2], world_.add_process("b"), 200);
  ASSERT_TRUE(MsgNode::connect(a, b).is_ok());
  std::vector<std::string> got;
  b.set_handler([&](migrlib::GuestId from, const common::Bytes& p) {
    EXPECT_EQ(from, 100u);
    got.emplace_back(p.begin(), p.end());
  });
  a.start();
  b.start();
  ASSERT_TRUE(a.send(200, common::Bytes{'h', 'i'}).is_ok());
  ASSERT_TRUE(a.send(200, common::Bytes{'y', 'o'}).is_ok());
  run_for(sim::msec(1));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "hi");
  EXPECT_EQ(got[1], "yo");
  EXPECT_EQ(b.errors(), 0u);
}

TEST_F(AppsTest, MsgNodeWindowBackpressure) {
  MsgNodeConfig cfg;
  cfg.depth = 4;
  MsgNode a(*runtimes_[1], world_.add_process("a"), 100, cfg);
  MsgNode b(*runtimes_[2], world_.add_process("b"), 200, cfg);
  ASSERT_TRUE(MsgNode::connect(a, b).is_ok());
  // Without ticking, credits run dry at the window size.
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.send(200, common::Bytes{1}).is_ok()) accepted++;
  }
  EXPECT_EQ(accepted, 4);
  a.start();
  b.start();
  run_for(sim::msec(1));
  EXPECT_TRUE(a.send(200, common::Bytes{1}).is_ok());  // credits returned
}

// ---------------------------------------------------------------------------
// Mini-Hadoop
// ---------------------------------------------------------------------------

struct Cluster {
  std::unique_ptr<MsgNode> master_node, w1_node, w2_node, backup_node;
  std::unique_ptr<HadoopMaster> master;
  std::unique_ptr<HadoopWorker> w1, w2, backup;
};

Cluster make_cluster(AppsTest&, rnic::World& world,
                     std::unordered_map<net::HostId, std::unique_ptr<MigrRdmaRuntime>>& rts,
                     HadoopConfig cfg) {
  Cluster c;
  c.master_node = std::make_unique<MsgNode>(*rts[1], world.add_process("master"), 1000);
  c.w1_node = std::make_unique<MsgNode>(*rts[2], world.add_process("w1"), 1001);
  c.w2_node = std::make_unique<MsgNode>(*rts[3], world.add_process("w2"), 1002);
  c.backup_node = std::make_unique<MsgNode>(*rts[4], world.add_process("backup"), 1003);
  EXPECT_TRUE(MsgNode::connect(*c.master_node, *c.w1_node).is_ok());
  EXPECT_TRUE(MsgNode::connect(*c.master_node, *c.w2_node).is_ok());
  EXPECT_TRUE(MsgNode::connect(*c.master_node, *c.backup_node).is_ok());
  EXPECT_TRUE(MsgNode::connect(*c.w1_node, *c.w2_node).is_ok());
  EXPECT_TRUE(MsgNode::connect(*c.backup_node, *c.w2_node).is_ok());

  c.w1 = std::make_unique<HadoopWorker>(*c.w1_node, cfg, 1000);
  c.w2 = std::make_unique<HadoopWorker>(*c.w2_node, cfg, 1000);
  c.backup = std::make_unique<HadoopWorker>(*c.backup_node, cfg, 1000);
  c.w1->set_replica(1002, c.w2->landing_addr(), c.w2->landing_vrkey());
  c.w2->set_replica(1001, c.w1->landing_addr(), c.w1->landing_vrkey());
  c.backup->set_replica(1002, c.w2->landing_addr(), c.w2->landing_vrkey());
  c.master = std::make_unique<HadoopMaster>(*c.master_node, cfg);
  c.master->add_worker(1001);
  c.master->add_worker(1002);
  c.master->set_backup(1003);

  c.master_node->start();
  c.w1_node->start();
  c.w2_node->start();
  c.backup_node->start();
  c.w1->start();
  c.w2->start();
  c.backup->start();
  return c;
}

HadoopConfig small_job(JobKind kind) {
  HadoopConfig cfg;
  cfg.kind = kind;
  cfg.tasks = 6;
  cfg.blocks_per_task = 4;
  cfg.block_size = 256 * 1024;
  cfg.compute_per_block = sim::msec(5);
  cfg.pi_task_compute = sim::msec(30);
  cfg.failover_recovery = sim::sec(2);
  return cfg;
}

TEST_F(AppsTest, HadoopDfsioJobCompletes) {
  auto c = make_cluster(*this, world_, runtimes_, small_job(JobKind::dfsio));
  c.master->start_job();
  const sim::TimeNs deadline = world_.loop().now() + sim::sec(10);
  while (!c.master->job_done() && world_.loop().now() < deadline) run_for(sim::msec(10));
  ASSERT_TRUE(c.master->job_done());
  EXPECT_EQ(c.master->blocks_completed(), 6u * 4u);
  EXPECT_GT(c.master->jct(), 0);
  EXPECT_EQ(c.master->failovers(), 0u);
  // Both workers contributed.
  EXPECT_GT(c.w1->tasks_completed(), 0u);
  EXPECT_GT(c.w2->tasks_completed(), 0u);
}

TEST_F(AppsTest, HadoopEstimatePiJobCompletes) {
  auto c = make_cluster(*this, world_, runtimes_, small_job(JobKind::estimate_pi));
  c.master->start_job();
  const sim::TimeNs deadline = world_.loop().now() + sim::sec(10);
  while (!c.master->job_done() && world_.loop().now() < deadline) run_for(sim::msec(10));
  ASSERT_TRUE(c.master->job_done());
  EXPECT_EQ(c.master->failovers(), 0u);
}

TEST_F(AppsTest, HadoopFailoverRecoversViaBackup) {
  auto cfg = small_job(JobKind::dfsio);
  // A longer job so the worker dies mid-job and the surviving worker alone
  // cannot finish before the backup's recovery delay elapses.
  cfg.tasks = 12;
  cfg.compute_per_block = sim::msec(60);
  auto c = make_cluster(*this, world_, runtimes_, cfg);
  c.master->start_job();
  run_for(sim::msec(150));
  // Worker 1's host dies.
  world_.fabric().set_partitioned(2, true);
  c.w1->stop();
  const sim::TimeNs deadline = world_.loop().now() + sim::sec(30);
  while (!c.master->job_done() && world_.loop().now() < deadline) run_for(sim::msec(10));
  ASSERT_TRUE(c.master->job_done());
  EXPECT_EQ(c.master->failovers(), 1u);
  EXPECT_GT(c.backup->tasks_completed(), 0u);
  // The recovery delay shows up in the JCT.
  EXPECT_GT(c.master->jct(), cfg.failover_recovery);
}

TEST_F(AppsTest, HadoopWorkerMigratesWithoutFailover) {
  auto cfg = small_job(JobKind::dfsio);
  cfg.tasks = 8;
  auto c = make_cluster(*this, world_, runtimes_, cfg);
  c.master->start_job();
  run_for(sim::msec(100));
  // Maintenance: migrate worker 1 (host 2 -> host 5) mid-job.
  auto report = migrate(1001, 5, c.w1.get());
  ASSERT_TRUE(report.ok) << report.error;
  const sim::TimeNs deadline = world_.loop().now() + sim::sec(30);
  while (!c.master->job_done() && world_.loop().now() < deadline) run_for(sim::msec(10));
  ASSERT_TRUE(c.master->job_done());
  // The master never noticed: no failover, and the migrated worker kept
  // completing tasks from the new host.
  EXPECT_EQ(c.master->failovers(), 0u);
  EXPECT_GT(c.w1->tasks_completed(), 0u);
  EXPECT_EQ(c.master->blocks_completed(), 8u * 4u);
}

}  // namespace
}  // namespace migr::apps
