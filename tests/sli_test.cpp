// Brownout SLI/SLO pipeline unit tests: window tiling across migration
// phases (the frozen windows must bracket [freeze_at, resume_at] exactly),
// quiet-stretch collapse, recovery detection against the idle baseline,
// the SLO spec grammar, multi-window burn-rate alerting, and the cost
// discipline (disabled taps and steady-state sampling allocate nothing,
// pinned with a counting global operator new like recorder_test).
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "obs/sli.hpp"
#include "obs/slo.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every allocation in the process funnels through these,
// so "zero allocations" is a hard property, not a sampling claim.
// ---------------------------------------------------------------------------

namespace {
std::uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count++;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_alloc_count++;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t a) { return ::operator new(n, a); }
// Nothrow variants funnel through the same malloc path so every new/delete
// pair is malloc/free (libstdc++ temporary buffers allocate nothrow but free
// via plain delete; ASan flags a mixed pair).
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count++;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace migr::obs {
namespace {

// With -DMIGR_OBS_DISABLE=ON the hub reports disabled no matter what, so
// tests that need an armed pipeline cannot pass by design; skip them
// cleanly (the parser, engine, and disabled-tap tests still run).
#ifdef MIGR_OBS_DISABLED
#define SKIP_IF_OBS_DISABLED() \
  GTEST_SKIP() << "obs layer compiled out (MIGR_OBS_DISABLE=ON)"
#else
#define SKIP_IF_OBS_DISABLED() (void)0
#endif

class SliHubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& hub = SliHub::global();
    hub.clear();
    SliConfig cfg;
    cfg.window = sim::usec(100);
    hub.set_config(cfg);
    hub.set_enabled(true);
  }
  void TearDown() override {
    auto& hub = SliHub::global();
    hub.clear();
    hub.set_enabled(false);
    hub.set_config(SliConfig{});
  }
};

void expect_tiled(const std::vector<SliWindow>& ws) {
  for (std::size_t i = 1; i < ws.size(); ++i) {
    EXPECT_EQ(ws[i].start, ws[i - 1].end) << "gap before window " << i;
  }
}

TEST_F(SliHubTest, WindowsTileAcrossMigrationPhasesAndFrozenBracketsBlackout) {
  SKIP_IF_OBS_DISABLED();
  auto& hub = SliHub::global();
  GuestSli* g = hub.guest(7, 0);
  ASSERT_NE(g, nullptr);

  // Idle baseline: 10 us RTTs, 1000 B deliveries, every 10 us for 1 ms.
  for (sim::TimeNs t = 0; t < sim::usec(1000); t += sim::usec(10)) {
    g->rtt(t, sim::usec(10));
    g->delivered(t, 1000);
  }
  // Migration starts mid-window; two pre-copy iterations with inflated RTTs.
  hub.on_migration_start(7, 1'050'000);
  for (sim::TimeNs t = 1'060'000; t <= 1'220'000; t += sim::usec(20)) {
    g->rtt(t, sim::usec(30));
  }
  hub.on_precopy_iteration(7, 1'230'000, 1);
  for (sim::TimeNs t = 1'240'000; t <= 1'400'000; t += sim::usec(20)) {
    g->rtt(t, sim::usec(30));
  }
  // Blackout off the window grid: 299 us frozen, no traffic.
  hub.on_freeze(7, 1'414'000);
  hub.on_resume(7, 1'713'000);
  // First post-resume window still inflated, second back at baseline.
  for (sim::TimeNs t = 1'720'000; t <= 1'800'000; t += sim::usec(20)) {
    g->rtt(t, sim::usec(50));
  }
  for (sim::TimeNs t = 1'820'000; t <= 1'900'000; t += sim::usec(20)) {
    g->rtt(t, sim::usec(10));
  }
  hub.on_migration_end(7, 1'950'000);
  hub.flush(sim::usec(2000));

  const auto& ws = g->windows();
  ASSERT_FALSE(ws.empty());
  expect_tiled(ws);
  EXPECT_EQ(ws.front().start, 0);
  EXPECT_EQ(ws.back().end, sim::usec(2000));

  // The frozen windows tile [freeze_at, resume_at] exactly — the brownout
  // timeline composes with the blackout waterfall.
  std::vector<const SliWindow*> frozen;
  sim::DurationNs frozen_total = 0;
  for (const SliWindow& w : ws) {
    if (w.phase == ServicePhase::frozen) {
      frozen.push_back(&w);
      frozen_total += w.duration();
    }
  }
  ASSERT_FALSE(frozen.empty());
  EXPECT_EQ(frozen.front()->start, 1'414'000);
  EXPECT_EQ(frozen.back()->end, 1'713'000);
  EXPECT_EQ(frozen_total, 299'000);  // == service_blackout()

  // Phase ordering: idle -> precopy -> frozen -> recovery -> idle.
  ASSERT_EQ(ws.front().phase, ServicePhase::idle);
  bool saw_precopy = false, saw_recovery = false;
  for (const SliWindow& w : ws) {
    if (w.phase == ServicePhase::precopy) {
      saw_precopy = true;
      EXPECT_GE(w.precopy_iter, 0);
    } else {
      EXPECT_EQ(w.precopy_iter, -1);
    }
    saw_recovery |= w.phase == ServicePhase::recovery;
  }
  EXPECT_TRUE(saw_precopy);
  EXPECT_TRUE(saw_recovery);
  EXPECT_EQ(g->phase(), ServicePhase::idle);  // recovered

  const BrownoutAttribution att = hub.attribution(7);
  EXPECT_TRUE(att.valid);
  EXPECT_EQ(att.migration_start, 1'050'000);
  EXPECT_EQ(att.freeze_at, 1'414'000);
  EXPECT_EQ(att.resume_at, 1'713'000);
  EXPECT_EQ(att.baseline_p99_ns, sim::usec(10));
  // First post-resume window (p99 = 50 us) fails the 1.5x-baseline bar; the
  // second (p99 = 10 us) ends recovery at its close, 200 us after resume.
  EXPECT_EQ(att.recovery_ns, 200'000);
  // Both pre-copy iterations inflated 3x over the baseline.
  ASSERT_EQ(att.precopy_p99.size(), 2u);
  for (const auto& it : att.precopy_p99) {
    EXPECT_EQ(it.p99_ns, sim::usec(30));
    EXPECT_DOUBLE_EQ(it.inflation, 3.0);
  }
  // No deliveries during the episode while the baseline delivered steadily.
  EXPECT_GT(att.goodput_loss_bytes, 0.0);
}

TEST_F(SliHubTest, QuietStretchCollapsesIntoOneWindowOnTheGrid) {
  SKIP_IF_OBS_DISABLED();
  auto& hub = SliHub::global();
  GuestSli* g = hub.guest(3, 0);
  ASSERT_NE(g, nullptr);

  // Nothing for 10.5 windows, then one sample.
  g->rtt(1'050'000, sim::usec(5));
  hub.flush(1'100'000);

  const auto& ws = g->windows();
  // One collapsed empty window [0, 1ms) — boundary on the window grid — then
  // the sample's window closed by the flush.
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].start, 0);
  EXPECT_EQ(ws[0].end, 1'000'000);
  EXPECT_EQ(ws[0].msgs, 0u);
  EXPECT_EQ(ws[1].start, 1'000'000);
  EXPECT_EQ(ws[1].end, 1'100'000);
  EXPECT_EQ(ws[1].msgs, 1u);
  expect_tiled(ws);
}

TEST_F(SliHubTest, AbortReturnsTheGuestToIdleWithoutRecovery) {
  SKIP_IF_OBS_DISABLED();
  auto& hub = SliHub::global();
  GuestSli* g = hub.guest(4, 0);
  ASSERT_NE(g, nullptr);
  g->rtt(sim::usec(50), sim::usec(10));
  hub.on_migration_start(4, sim::usec(200));
  // Abort mid-precopy: the service never froze, rollback keeps it running.
  hub.on_migration_end(4, sim::usec(450));
  hub.flush(sim::usec(600));

  EXPECT_EQ(g->phase(), ServicePhase::idle);
  for (const SliWindow& w : g->windows()) {
    EXPECT_NE(w.phase, ServicePhase::frozen);
    EXPECT_NE(w.phase, ServicePhase::recovery);
  }
  const BrownoutAttribution att = hub.attribution(4);
  EXPECT_TRUE(att.valid);          // the episode happened...
  EXPECT_EQ(att.freeze_at, -1);    // ...but no blackout
  EXPECT_EQ(att.recovery_ns, -1);  // and no recovery phase
}

TEST_F(SliHubTest, RetransmitDeltasClampOnCounterReset) {
  SKIP_IF_OBS_DISABLED();
  auto& hub = SliHub::global();
  GuestSli* g = hub.guest(5, 0);
  ASSERT_NE(g, nullptr);
  std::uint64_t counter = 100;  // non-zero start: priming must swallow it
  hub.set_retransmit_source(5, 0, [&counter] { return counter; });

  g->rtt(sim::usec(50), sim::usec(5));
  hub.flush(sim::usec(100));  // priming poll: delta 0, not 100
  counter = 107;
  g->rtt(sim::usec(150), sim::usec(5));
  hub.flush(sim::usec(200));
  counter = 3;  // QP switch reset the transport counter
  g->rtt(sim::usec(250), sim::usec(5));
  hub.flush(sim::usec(300));

  const auto& ws = g->windows();
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_EQ(ws[0].retransmits, 0u);
  EXPECT_EQ(ws[1].retransmits, 7u);
  EXPECT_EQ(ws[2].retransmits, 0u);  // clamped, not wrapped
}

// ---------------------------------------------------------------------------
// SLO spec grammar
// ---------------------------------------------------------------------------

TEST(SloSpecTest, ParserAcceptsTheDocumentedGrammar) {
  std::vector<SloRule> rules;
  std::string err;
  ASSERT_TRUE(parse_slo_spec(
      "name=lat,p99<60us,budget=0.05,fast=400us,slow=4ms,burn=2;goodput>1gbps", &rules,
      &err))
      << err;
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].name, "lat");
  EXPECT_EQ(rules[0].metric, SloRule::Metric::p99);
  EXPECT_TRUE(rules[0].want_below);
  EXPECT_DOUBLE_EQ(rules[0].bound, 60'000.0);
  EXPECT_DOUBLE_EQ(rules[0].budget, 0.05);
  EXPECT_EQ(rules[0].fast, sim::usec(400));
  EXPECT_EQ(rules[0].slow, sim::msec(4));
  EXPECT_DOUBLE_EQ(rules[0].burn_threshold, 2.0);
  EXPECT_EQ(rules[1].metric, SloRule::Metric::goodput);
  EXPECT_FALSE(rules[1].want_below);
  EXPECT_DOUBLE_EQ(rules[1].bound, 1e9);
  EXPECT_EQ(rules[1].name, "goodput>1gbps");  // defaults to the objective text

  ASSERT_TRUE(parse_slo_spec("retx_rate<100", &rules, &err)) << err;
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].metric, SloRule::Metric::retx_rate);
  EXPECT_DOUBLE_EQ(rules[0].bound, 100.0);
}

TEST(SloSpecTest, ParserRejectsMalformedSpecs) {
  std::vector<SloRule> rules;
  std::string err;
  const char* bad[] = {
      "",                            // empty
      "p98<60us",                    // unknown metric
      "p99<60parsecs",               // unknown unit
      "p99<60us,budget=2",           // budget out of (0,1]
      "p99<60us,fast=10ms,slow=1ms", // fast exceeds slow
      "name=foo,budget=0.1",         // rule without an objective
      "goodput>60us",                // rate with a duration unit
  };
  for (const char* spec : bad) {
    err.clear();
    EXPECT_FALSE(parse_slo_spec(spec, &rules, &err)) << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

// ---------------------------------------------------------------------------
// Burn-rate engine
// ---------------------------------------------------------------------------

SliWindow mk_window(sim::TimeNs start, sim::DurationNs dur, std::int64_t p99,
                    std::uint64_t msgs = 10, ServicePhase phase = ServicePhase::idle) {
  SliWindow w;
  w.start = start;
  w.end = start + dur;
  w.phase = phase;
  w.msgs = msgs;
  w.p99_ns = p99;
  return w;
}

TEST(SloEngineTest, AlertFiresWhenBothHorizonsBurnAndResolvesOnTheFastOne) {
  std::vector<SloRule> rules;
  std::string err;
  // budget 0.5, burn 1: alert when >= 50% of both trailing horizons is bad.
  ASSERT_TRUE(parse_slo_spec("p99<60us,budget=0.5,fast=400us,slow=4ms,burn=1", &rules,
                             &err))
      << err;
  SloEngine eng(rules);

  // 4 ms of good windows: no alert.
  sim::TimeNs t = 0;
  for (int i = 0; i < 40; ++i, t += sim::usec(100)) {
    eng.on_window(1, mk_window(t, sim::usec(100), sim::usec(10)));
  }
  EXPECT_FALSE(eng.burning(1));
  EXPECT_EQ(eng.alerts().size(), 0u);

  // Bad windows: the fast horizon saturates after 4, the slow one needs 2 ms
  // of bad time before the alert can fire.
  int fired_after = -1;
  for (int i = 0; i < 20; ++i, t += sim::usec(100)) {
    eng.on_window(1, mk_window(t, sim::usec(100), sim::usec(500)));
    if (fired_after < 0 && !eng.alerts().empty()) fired_after = i + 1;
  }
  ASSERT_EQ(eng.alerts().size(), 1u);
  EXPECT_TRUE(eng.burning(1));
  EXPECT_GT(fired_after, 4);  // the slow horizon gated it, not the fast one
  EXPECT_GE(eng.burn_rate(1), 1.0);
  EXPECT_EQ(eng.active_alert_count(), 1u);

  // Good windows again: resolves once the fast horizon clears.
  for (int i = 0; i < 8; ++i, t += sim::usec(100)) {
    eng.on_window(1, mk_window(t, sim::usec(100), sim::usec(10)));
  }
  EXPECT_FALSE(eng.burning(1));
  EXPECT_EQ(eng.active_alert_count(), 0u);
  ASSERT_EQ(eng.alerts().size(), 1u);
  EXPECT_GE(eng.alerts()[0].resolved_at, eng.alerts()[0].fired_at);
}

TEST(SloEngineTest, FrozenWindowsAreUnconditionallyBadAndEmptyOnesSkipped) {
  std::vector<SloRule> rules;
  std::string err;
  ASSERT_TRUE(parse_slo_spec("p99<60us,budget=0.5,fast=400us,slow=400us,burn=1", &rules,
                             &err))
      << err;
  SloEngine eng(rules);

  // Empty non-frozen windows carry no latency signal: never an alert.
  sim::TimeNs t = 0;
  for (int i = 0; i < 10; ++i, t += sim::usec(100)) {
    eng.on_window(2, mk_window(t, sim::usec(100), 0, /*msgs=*/0));
  }
  EXPECT_FALSE(eng.burning(2));

  // Frozen windows are bad even with zero messages — a frozen service is
  // failing its objective; one 400 us frozen window saturates both horizons.
  eng.on_window(2, mk_window(t, sim::usec(400), 0, 0, ServicePhase::frozen));
  EXPECT_TRUE(eng.burning(2));
}

// ---------------------------------------------------------------------------
// Cost discipline
// ---------------------------------------------------------------------------

TEST(SliCostTest, DisabledHubTapsAllocateNothing) {
  auto& hub = SliHub::global();
  hub.clear();
  hub.set_enabled(false);
  GuestSli* g = hub.guest(9, 0);
  EXPECT_EQ(g, nullptr);  // apps cache this: one branch per message

  const std::uint64_t before = g_alloc_count;
  for (sim::TimeNs t = 0; t < 10'000; ++t) {
    if (g != nullptr) g->rtt(t, 10);  // the app-side tap shape
    hub.on_freeze(9, t);
    hub.on_resume(9, t);
  }
  hub.flush(10'000);
  EXPECT_EQ(g_alloc_count, before);
}

TEST(SliCostTest, EnabledSamplingWithinAWindowAllocatesNothing) {
  SKIP_IF_OBS_DISABLED();
  auto& hub = SliHub::global();
  hub.clear();
  SliConfig cfg;
  cfg.window = sim::msec(1);
  hub.set_config(cfg);
  hub.set_enabled(true);
  GuestSli* g = hub.guest(9, 0);
  ASSERT_NE(g, nullptr);

  // Per-sample cost is bucket arithmetic on preallocated memory — even past
  // the exact-mode reservoir spill. Allocation may happen only at window
  // close; every sample below stays inside the first window.
  const std::uint64_t before = g_alloc_count;
  for (int i = 0; i < 5000; ++i) {
    g->rtt(i * 100, 10'000 + (i % 64));
    g->delivered(i * 100, 512);
  }
  EXPECT_EQ(g_alloc_count, before);

  hub.clear();
  hub.set_enabled(false);
  hub.set_config(SliConfig{});
}

}  // namespace
}  // namespace migr::obs
