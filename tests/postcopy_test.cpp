// Post-copy mode and adaptive pre-copy, exercised at the cluster level: the
// same write-heavy fleet is drained once per mode and the reports compared —
// post-copy must buy a shorter service blackout and pay for it with a
// demand-fault drain whose accounting balances exactly.
#include <gtest/gtest.h>

#include "cluster/drain.hpp"
#include "obs/sli.hpp"

namespace migr::cluster {
namespace {

using migrlib::MigrationMode;

TrafficProfile write_heavy_profile() {
  TrafficProfile p;
  p.send_interval = sim::usec(30);
  p.msg_bytes = 1024;
  p.extra_mem_bytes = 4 << 20;
  p.dirty_interval = sim::msec(1);
  return p;
}

TrafficProfile clean_profile() {
  TrafficProfile p;
  p.send_interval = sim::usec(30);
  p.msg_bytes = 1024;
  p.extra_mem_bytes = 1 << 20;
  p.dirty_interval = 0;  // never dirties its extra MR
  return p;
}

/// Drain host 1 of a small write-heavy fleet in the given mode.
DrainReport drain_fleet(MigrationMode mode, bool sli_on = false) {
  ClusterConfig cfg;
  cfg.hosts = 4;
  cfg.seed = 7;
  ClusterModel model(cfg);
  if (sli_on) model.enable_sli(obs::SliHub::global());
  for (GuestId g = 0; g < 2; ++g) {
    EXPECT_TRUE(model.add_guest(1, 100 + g, write_heavy_profile()).is_ok());
    EXPECT_TRUE(model.add_guest(2 + g, 200 + g, write_heavy_profile()).is_ok());
    EXPECT_TRUE(model.connect_guests(100 + g, 200 + g).is_ok());
  }
  model.run_for(sim::msec(5));

  SchedulerConfig scfg;
  scfg.limits.max_concurrent_fleet = 2;
  scfg.limits.max_concurrent_per_source = 2;
  scfg.limits.max_concurrent_per_dest = 2;
  scfg.migration.mode = mode;
  MigrationScheduler sched(model, scfg);
  DrainWorkflow drain(model, sched);
  DrainReport rep = drain.run(1);
  EXPECT_TRUE(rep.ok) << format_drain_report(rep);
  if (sli_on) {
    model.run_for(sim::msec(2));
    obs::SliHub::global().flush(model.loop().now());
  }
  return rep;
}

TEST(PostcopyTest, ShorterBlackoutThanPrecopyOnWriteHeavyFleet) {
  const DrainReport pre = drain_fleet(MigrationMode::precopy);
  const DrainReport post = drain_fleet(MigrationMode::postcopy);

  // The headline trade: stop-and-copy no longer ships the hot dirty set
  // inside the blackout, so every percentile must shrink.
  EXPECT_LT(post.blackout_p50, pre.blackout_p50);
  EXPECT_LT(post.blackout_max, pre.blackout_max);

  for (const MigrationOutcome& o : pre.outcomes) {
    EXPECT_FALSE(o.report.postcopy.enabled);
    EXPECT_EQ(o.report.mode, MigrationMode::precopy);
  }
  for (const MigrationOutcome& o : post.outcomes) {
    const migrlib::PostcopyStats& pc = o.report.postcopy;
    EXPECT_EQ(o.report.mode, MigrationMode::postcopy);
    EXPECT_EQ(o.report.stop_reason, "postcopy");
    ASSERT_TRUE(pc.enabled);
    EXPECT_GT(pc.missing_pages, 0u);
    // Every missing page is owned by exactly one fill path.
    EXPECT_EQ(pc.demand_faults + pc.prefetched_pages, pc.missing_pages);
    EXPECT_GT(pc.fetch_bytes, 0u);
    EXPECT_GT(pc.drain_ns, 0);
    if (pc.demand_faults > 0) {
      EXPECT_GT(pc.fault_p50_ns, 0);
      EXPECT_GE(pc.fault_max_ns, pc.fault_p99_ns);
    }
    // The waterfall still tiles the (shorter) blackout exactly.
    EXPECT_EQ(o.report.waterfall_total(), o.report.service_blackout());
    EXPECT_NE(o.report.waterfall_json().find("\"mode\":\"postcopy\""),
              std::string::npos);
  }
}

TEST(PostcopyTest, SliTimelineGetsAPostcopyPhase) {
  auto& hub = obs::SliHub::global();
  hub.clear();
  hub.set_enabled(true);
  const DrainReport post = drain_fleet(MigrationMode::postcopy, /*sli_on=*/true);
  ASSERT_TRUE(post.ok);
  bool saw_postcopy = false;
  for (std::uint32_t id : hub.guest_ids()) {
    const obs::GuestSli* g = hub.find(id);
    if (g == nullptr) continue;
    for (const obs::SliWindow& w : g->windows()) {
      if (w.phase == obs::ServicePhase::postcopy) saw_postcopy = true;
    }
  }
  EXPECT_TRUE(saw_postcopy);
  hub.clear();
  hub.set_enabled(false);
}

TEST(PostcopyTest, SchedulerDirtyRatePolicyPicksModePerGuest) {
  ClusterConfig cfg;
  cfg.hosts = 4;
  cfg.seed = 7;
  ClusterModel model(cfg);
  EXPECT_TRUE(model.add_guest(1, 100, write_heavy_profile()).is_ok());
  EXPECT_TRUE(model.add_guest(1, 101, clean_profile()).is_ok());
  EXPECT_TRUE(model.add_guest(2, 200, write_heavy_profile()).is_ok());
  EXPECT_TRUE(model.add_guest(2, 201, clean_profile()).is_ok());
  EXPECT_TRUE(model.connect_guests(100, 200).is_ok());
  EXPECT_TRUE(model.connect_guests(101, 201).is_ok());
  model.run_for(sim::msec(5));

  // Threshold between the clean guest's 0 B/s and the hot guest's ~4 GiB/s.
  SchedulerConfig scfg;
  scfg.postcopy_dirty_bps = 1e9;
  MigrationScheduler sched(model, scfg);
  auto hot = sched.submit(MigrationRequest{100, 3, 0});
  auto cold = sched.submit(MigrationRequest{101, 3, 0});
  ASSERT_TRUE(sched.run_until_idle().is_ok());
  ASSERT_TRUE(sched.outcome(hot)->completed);
  ASSERT_TRUE(sched.outcome(cold)->completed);
  EXPECT_TRUE(sched.outcome(hot)->report.postcopy.enabled);
  EXPECT_FALSE(sched.outcome(cold)->report.postcopy.enabled);

  // An explicit per-request mode outranks the policy: force the clean guest
  // post-copy on the way back.
  MigrationRequest back{101, 1, 0};
  back.mode = MigrationMode::postcopy;
  auto forced = sched.submit(back);
  ASSERT_TRUE(sched.run_until_idle().is_ok());
  ASSERT_TRUE(sched.outcome(forced)->completed);
  EXPECT_TRUE(sched.outcome(forced)->report.postcopy.enabled);
}

TEST(PostcopyTest, AdaptivePrecopyThrottlesADivergingGuest) {
  ClusterConfig cfg;
  cfg.hosts = 4;
  cfg.seed = 7;
  ClusterModel model(cfg);
  EXPECT_TRUE(model.add_guest(1, 100, write_heavy_profile()).is_ok());
  EXPECT_TRUE(model.add_guest(2, 200, write_heavy_profile()).is_ok());
  EXPECT_TRUE(model.connect_guests(100, 200).is_ok());
  model.run_for(sim::msec(5));

  SchedulerConfig scfg;
  scfg.migration.adaptive_precopy = true;
  scfg.migration.max_precopy_rounds = 10;
  scfg.migration.dirty_page_threshold = 16;
  MigrationScheduler sched(model, scfg);
  auto id = sched.submit(MigrationRequest{100, 3, 0});
  ASSERT_TRUE(sched.run_until_idle().is_ok());
  const MigrationOutcome* out = sched.outcome(id);
  ASSERT_NE(out, nullptr);
  ASSERT_TRUE(out->completed) << out->error;
  const migrlib::MigrationReport& rep = out->report;

  // The 4 MiB MR is fully re-dirtied every millisecond — pre-copy cannot
  // converge. The predictor must have measured that, walked the
  // auto-converge ladder, and stopped instead of burning all 10 rounds.
  EXPECT_GT(rep.dirty_pages_per_sec, 0.0);
  EXPECT_EQ(rep.stop_reason, "diverging");
  EXPECT_GE(rep.autoconverge_steps, 1);
  EXPECT_GT(rep.throttle_factor, 0.0);
  EXPECT_LT(rep.precopy_rounds, 10u);
  // The throttle must be released once the migration is over.
  EXPECT_EQ(model.throttle_of(100), 0.0);
}

TEST(PostcopyTest, ThrottleSkipsRequestedFractionOfTicks) {
  ClusterConfig cfg;
  cfg.hosts = 2;
  cfg.seed = 7;
  ClusterModel model(cfg);
  TrafficProfile p = clean_profile();
  p.send_interval = sim::usec(100);
  EXPECT_TRUE(model.add_guest(1, 100, p).is_ok());
  EXPECT_TRUE(model.add_guest(2, 200, p).is_ok());
  EXPECT_TRUE(model.connect_guests(100, 200).is_ok());
  model.run_for(sim::msec(10));
  const std::uint64_t before = model.guest(100)->sent();
  model.set_throttle(100, 0.5);
  model.run_for(sim::msec(10));
  const std::uint64_t throttled = model.guest(100)->sent() - before;
  model.set_throttle(100, 0.0);
  model.run_for(sim::msec(10));
  const std::uint64_t full = model.guest(100)->sent() - before - throttled;
  // Token-bucket skip: the throttled window sends half of the full-rate
  // window (±1 tick of rounding).
  EXPECT_NEAR(static_cast<double>(throttled), static_cast<double>(full) / 2, 2.0);
}

}  // namespace
}  // namespace migr::cluster
