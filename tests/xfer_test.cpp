// TransferMux + page-suppression codec unit tests: reassembly fidelity,
// per-stream accounting balance (attempted == delivered + lost) on clean,
// lossy, and aborted transfers, pacing scale-out, and the zero/delta page
// encodings (raw == shipped + suppressed by construction).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "criu/pagedelta.hpp"
#include "migr/xfer.hpp"
#include "net/fabric.hpp"
#include "sim/event_loop.hpp"

namespace migr::migrlib {
namespace {

using common::Bytes;

class XferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fabric_.attach_host(1).is_ok());
    ASSERT_TRUE(fabric_.attach_host(2).is_ok());
  }

  Bytes make_payload(std::size_t n) {
    Bytes b(n);
    for (std::size_t i = 0; i < n; i++) b[i] = static_cast<std::uint8_t>(i * 131 + 7);
    return b;
  }

  void run_until_idle() {
    while (loop_.run_for(sim::msec(50)) > 0) {
    }
  }

  sim::EventLoop loop_;
  net::Fabric fabric_{loop_, net::FabricConfig{}, 99};
};

TEST_F(XferTest, SingleStreamDeliversPayloadIntact) {
  XferOptions xo;
  xo.streams = 1;
  xo.chunk_bytes = 4096;
  TransferMux mux(loop_, fabric_, "t.xfer.0", 1, 2, xo);
  Bytes got;
  int fails = 0;
  mux.open([&](Bytes&& p) { got = std::move(p); },
           [&](const common::Status&) { fails++; });
  const Bytes sent = make_payload(100 * 1024 + 123);
  mux.send(sent);
  run_until_idle();
  EXPECT_EQ(got, sent);
  EXPECT_EQ(fails, 0);
  EXPECT_FALSE(mux.busy());
  const XferStats& xs = mux.stats();
  EXPECT_EQ(xs.transfers, 1u);
  EXPECT_EQ(xs.lost(), 0u);
  EXPECT_EQ(xs.attempted(), xs.delivered());
  EXPECT_EQ(xs.attempted(), TransferMux::wire_size(sent.size(), xo.chunk_bytes));
}

TEST_F(XferTest, MultiStreamRoundRobinShardsAndBalances) {
  XferOptions xo;
  xo.streams = 4;
  xo.chunk_bytes = 4096;
  TransferMux mux(loop_, fabric_, "t.xfer.1", 1, 2, xo);
  Bytes got;
  mux.open([&](Bytes&& p) { got = std::move(p); }, [](const common::Status&) {});
  const Bytes sent = make_payload(64 * 4096);  // 64 chunks, 16 per stream
  mux.send(sent);
  run_until_idle();
  EXPECT_EQ(got, sent);
  const XferStats& xs = mux.stats();
  ASSERT_EQ(xs.streams.size(), 4u);
  for (const XferStreamStats& s : xs.streams) {
    EXPECT_EQ(s.chunks, 16u);  // deterministic i % N sharding
    EXPECT_EQ(s.bytes_attempted, s.bytes_delivered + s.bytes_lost());
    EXPECT_EQ(s.bytes_lost(), 0u);
  }
  EXPECT_EQ(xs.attempted(), TransferMux::wire_size(sent.size(), xo.chunk_bytes));
}

TEST_F(XferTest, BackToBackSendsDeliverInOrder) {
  XferOptions xo;
  xo.streams = 2;
  xo.chunk_bytes = 2048;
  TransferMux mux(loop_, fabric_, "t.xfer.2", 1, 2, xo);
  std::vector<Bytes> got;
  mux.open([&](Bytes&& p) { got.push_back(std::move(p)); },
           [](const common::Status&) {});
  const Bytes a = make_payload(10 * 1024);
  const Bytes b = make_payload(3 * 1024 + 5);
  const Bytes c = make_payload(1);
  mux.send(a);
  mux.send(b);
  mux.send(c);
  run_until_idle();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], a);
  EXPECT_EQ(got[1], b);
  EXPECT_EQ(got[2], c);
  EXPECT_EQ(mux.stats().transfers, 3u);
}

TEST_F(XferTest, LossyCtrlPlaneRetriesAndAccountingBalances) {
  net::Faults f;
  f.ctrl_loss_prob = 0.2;
  fabric_.set_faults(f);
  XferOptions xo;
  xo.streams = 4;
  xo.chunk_bytes = 4096;
  xo.chunk_timeout = sim::msec(2);
  xo.max_chunk_retries = 50;  // lossy but must complete
  TransferMux mux(loop_, fabric_, "t.xfer.3", 1, 2, xo);
  Bytes got;
  int fails = 0;
  mux.open([&](Bytes&& p) { got = std::move(p); },
           [&](const common::Status&) { fails++; });
  const Bytes sent = make_payload(64 * 4096);
  mux.send(sent);
  run_until_idle();
  EXPECT_EQ(got, sent);
  EXPECT_EQ(fails, 0);
  const XferStats& xs = mux.stats();
  EXPECT_GT(xs.retries(), 0u) << "a 20% lossy link must hit the retry path";
  // Once the fabric quiesced, the balance holds exactly, per stream and in
  // total: every attempted frame either arrived or was dropped.
  std::uint64_t per_stream_attempted = 0;
  for (const XferStreamStats& s : xs.streams) {
    EXPECT_EQ(s.bytes_attempted, s.bytes_delivered + s.bytes_lost());
    per_stream_attempted += s.bytes_attempted;
  }
  EXPECT_EQ(per_stream_attempted, xs.attempted());
  EXPECT_EQ(xs.attempted(), xs.delivered() + xs.lost());
  EXPECT_GT(xs.attempted(), TransferMux::wire_size(sent.size(), xo.chunk_bytes));
}

TEST_F(XferTest, CancelMidTransferKeepsStatsBalanced) {
  XferOptions xo;
  xo.streams = 2;
  xo.chunk_bytes = 4096;
  xo.stream_gbps = 1.0;  // slow enough that cancel lands mid-flight
  TransferMux mux(loop_, fabric_, "t.xfer.4", 1, 2, xo);
  Bytes got;
  mux.open([&](Bytes&& p) { got = std::move(p); }, [](const common::Status&) {});
  mux.send(make_payload(256 * 4096));
  loop_.run_for(sim::usec(200));
  EXPECT_TRUE(mux.busy());
  mux.cancel();
  EXPECT_FALSE(mux.busy());
  run_until_idle();  // in-flight frames land on a dead rx; acks ignored
  EXPECT_TRUE(got.empty());
  const XferStats& xs = mux.stats();
  EXPECT_GT(xs.attempted(), 0u) << "an aborted transfer still reports attempts";
  EXPECT_EQ(xs.attempted(), xs.delivered() + xs.lost());
  EXPECT_EQ(xs.transfers, 0u);
}

TEST_F(XferTest, ChunkRetryExhaustionFailsTransfer) {
  net::Faults f;
  f.ctrl_loss_prob = 1.0;  // nothing ever arrives
  fabric_.set_faults(f);
  XferOptions xo;
  xo.chunk_timeout = sim::usec(500);
  xo.max_chunk_retries = 3;
  TransferMux mux(loop_, fabric_, "t.xfer.5", 1, 2, xo);
  int fails = 0;
  common::Status last = common::Status::ok();
  mux.open([](Bytes&&) { FAIL() << "delivery on a dead link"; },
           [&](const common::Status& st) {
             fails++;
             last = st;
           });
  mux.send(make_payload(4096));
  run_until_idle();
  EXPECT_EQ(fails, 1);
  EXPECT_EQ(last.code(), common::Errc::timeout);
  EXPECT_FALSE(mux.busy());
  const XferStats& xs = mux.stats();
  EXPECT_EQ(xs.delivered(), 0u);
  EXPECT_EQ(xs.lost(), xs.attempted());
}

// Pacing is the multifd motivation: with a per-stream ceiling, N streams
// finish the same payload materially sooner.
TEST_F(XferTest, ParallelStreamsScaleTransferTime) {
  auto timed_transfer = [&](std::uint32_t streams, const std::string& base) {
    XferOptions xo;
    xo.streams = streams;
    xo.stream_gbps = 25.0;
    xo.chunk_bytes = 64 * 1024;
    TransferMux mux(loop_, fabric_, base, 1, 2, xo);
    bool done = false;
    sim::TimeNs done_at = 0;
    // Capture the delivery instant in the callback: run_until_idle() advances
    // now() to the end of its polling window, which would quantize the timing.
    mux.open([&](Bytes&&) { done = true; done_at = loop_.now(); },
             [](const common::Status&) {});
    const sim::TimeNs t0 = loop_.now();
    mux.send(make_payload(4u << 20));
    run_until_idle();
    EXPECT_TRUE(done);
    return done_at - t0;
  };
  const sim::DurationNs one = timed_transfer(1, "t.xfer.p1");
  const sim::DurationNs four = timed_transfer(4, "t.xfer.p4");
  EXPECT_LT(four, one);
  EXPECT_GE(one, 2 * four) << "4 streams must be at least 2x faster than 1";
}

// ---------------------------------------------------------------------------
// Page suppression codec
// ---------------------------------------------------------------------------

criu::PageSet::Page page_of(proc::VirtAddr addr, std::uint8_t fill) {
  criu::PageSet::Page p;
  p.addr = addr;
  p.data.assign(proc::kPageSize, fill);
  return p;
}

TEST(PageDeltaTest, RoundTripAllEncodings) {
  criu::PageDeltaEncoder enc;
  criu::PageDeltaDecoder dec;

  // Round 1: one zero page, one content page -> kZero + kFull.
  criu::PageSet r1;
  r1.pages.push_back(page_of(0x1000, 0x00));
  r1.pages.push_back(page_of(0x2000, 0xAB));
  auto got1 = dec.decode(enc.encode(r1));
  ASSERT_TRUE(got1.is_ok());
  ASSERT_EQ(got1->pages.size(), 2u);
  EXPECT_EQ(got1->pages[0].addr, 0x1000u);
  EXPECT_EQ(got1->pages[0].data, r1.pages[0].data);
  EXPECT_EQ(got1->pages[1].data, r1.pages[1].data);

  // Round 2: page 0x2000 unchanged (kSame -> omitted from the restore set),
  // page 0x1000 gets a tiny diff (kDelta).
  criu::PageSet r2;
  criu::PageSet::Page changed = page_of(0x1000, 0x00);
  changed.data[17] = 0x5A;
  changed.data[900] = 0x07;
  r2.pages.push_back(changed);
  r2.pages.push_back(page_of(0x2000, 0xAB));
  const Bytes wire2 = enc.encode(r2);
  EXPECT_LT(wire2.size(), proc::kPageSize) << "delta+same round must ship tiny";
  auto got2 = dec.decode(wire2);
  ASSERT_TRUE(got2.is_ok());
  ASSERT_EQ(got2->pages.size(), 1u) << "unchanged page is suppressed entirely";
  EXPECT_EQ(got2->pages[0].addr, 0x1000u);
  EXPECT_EQ(got2->pages[0].data, changed.data);

  const criu::PageDeltaStats& st = enc.stats();
  EXPECT_EQ(st.pages_zero, 1u);
  EXPECT_EQ(st.pages_full, 1u);
  EXPECT_EQ(st.pages_same, 1u);
  EXPECT_EQ(st.pages_delta, 1u);
  EXPECT_EQ(st.bytes_raw, st.bytes_shipped + st.bytes_suppressed);
  EXPECT_EQ(st.bytes_raw, 4u * proc::kPageSize);
}

TEST(PageDeltaTest, ZeroPageWorkloadSuppressesFiveFold) {
  criu::PageDeltaEncoder enc;
  criu::PageSet zeros;
  for (int i = 0; i < 64; i++) zeros.pages.push_back(page_of(0x1000 * (i + 1), 0x00));
  const Bytes wire = enc.encode(zeros);
  EXPECT_GE(zeros.byte_size(), 5 * wire.size())
      << "zero pages must ship >=5x fewer bytes than raw";
  criu::PageDeltaDecoder dec;
  auto got = dec.decode(wire);
  ASSERT_TRUE(got.is_ok());
  ASSERT_EQ(got->pages.size(), 64u);
  for (const auto& p : got->pages) {
    EXPECT_TRUE(std::all_of(p.data.begin(), p.data.end(),
                            [](std::uint8_t b) { return b == 0; }));
  }
}

TEST(PageDeltaTest, MostlyChangedPageShipsFull) {
  criu::PageDeltaEncoder enc;
  criu::PageDeltaDecoder dec;
  criu::PageSet r1;
  r1.pages.push_back(page_of(0x7000, 0x11));
  ASSERT_TRUE(dec.decode(enc.encode(r1)).is_ok());

  criu::PageSet r2;
  r2.pages.push_back(page_of(0x7000, 0xEE));  // every byte differs
  auto got = dec.decode(enc.encode(r2));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(enc.stats().pages_delta, 0u) << "whole-page churn is not delta-eligible";
  EXPECT_EQ(enc.stats().pages_full, 2u);
  ASSERT_EQ(got->pages.size(), 1u);
  EXPECT_EQ(got->pages[0].data, r2.pages[0].data);
}

TEST(PageDeltaTest, OutOfOrderBatchIsRejected) {
  criu::PageDeltaEncoder enc;
  criu::PageDeltaDecoder dec;
  criu::PageSet r;
  r.pages.push_back(page_of(0x1000, 0x42));
  const Bytes b1 = enc.encode(r);
  const Bytes b2 = enc.encode(r);
  ASSERT_TRUE(dec.decode(b1).is_ok());
  // Replaying b1 (stale seq) must fail: kSame/kDelta correctness depends on
  // both shadow caches evolving in lockstep.
  EXPECT_EQ(dec.decode(b1).status().code(), common::Errc::failed_precondition);
  EXPECT_TRUE(dec.decode(b2).is_ok());
}

}  // namespace
}  // namespace migr::migrlib
