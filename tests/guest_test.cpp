// Focused unit tests for the MigrRDMA guest library: completion-channel
// event accounting (§3.4 "consistency of CQ events"), UD virtualization,
// resource lifecycle/pruning, fake-CQ ordering, and translation-table
// behaviour that the integration tests exercise only incidentally.
#include <gtest/gtest.h>

#include "migr/guest_lib.hpp"
#include "migr/migration.hpp"
#include "rnic/world.hpp"

namespace migr::migrlib {
namespace {

using common::Errc;
using rnic::Cqe;
using rnic::CqeStatus;
using rnic::RecvWr;
using rnic::SendWr;
using rnic::WrOpcode;

class GuestTest : public ::testing::Test {
 protected:
  GuestTest() {
    for (net::HostId h = 1; h <= 3; ++h) {
      devices_[h] = &world_.add_device(h);
      runtimes_[h] =
          std::make_unique<MigrRdmaRuntime>(directory_, *devices_[h], world_.fabric());
    }
    a_ = runtimes_[1]->create_guest(world_.add_process("a"), 10).value();
    b_ = runtimes_[3]->create_guest(world_.add_process("b"), 20).value();
    pd_a_ = a_->alloc_pd().value();
    pd_b_ = b_->alloc_pd().value();
    cq_a_ = a_->create_cq(512).value();
    cq_b_ = b_->create_cq(512).value();
  }

  VQpn qp(GuestContext* g, VHandle pd, VHandle cq, rnic::QpType type = rnic::QpType::rc) {
    GuestQpAttr attr;
    attr.type = type;
    attr.vpd = pd;
    attr.vsend_cq = cq;
    attr.vrecv_cq = cq;
    return g->create_qp(attr).value();
  }

  struct Buf {
    std::uint64_t addr;
    VMr mr;
  };
  Buf buf(GuestContext* g, VHandle pd, std::uint64_t size) {
    Buf b;
    b.addr = g->process().mem().mmap(size, "buf").value();
    b.mr = g->reg_mr(pd, b.addr, size,
                     rnic::kAccessLocalWrite | rnic::kAccessRemoteWrite |
                         rnic::kAccessRemoteRead)
               .value();
    return b;
  }

  void connect(VQpn qa, VQpn qb) {
    ASSERT_TRUE(a_->connect_qp(qa, 20, qb, 1, 2).is_ok());
    ASSERT_TRUE(b_->connect_qp(qb, 10, qa, 2, 1).is_ok());
  }

  void run_for(sim::DurationNs d) { world_.loop().run_until(world_.loop().now() + d); }

  rnic::World world_;
  GuestDirectory directory_;
  std::unordered_map<net::HostId, rnic::Device*> devices_;
  std::unordered_map<net::HostId, std::unique_ptr<MigrRdmaRuntime>> runtimes_;
  GuestContext* a_ = nullptr;
  GuestContext* b_ = nullptr;
  VHandle pd_a_ = 0, pd_b_ = 0, cq_a_ = 0, cq_b_ = 0;
};

// ---------------------------------------------------------------------------
// Lifecycle / bookkeeping
// ---------------------------------------------------------------------------

TEST_F(GuestTest, DeregPrunesRoadmapAndInvalidatesVlkey) {
  Buf b1 = buf(a_, pd_a_, 4096);
  ASSERT_TRUE(a_->dereg_mr(b1.mr.vlkey).is_ok());
  // The creation roadmap no longer contains the MR (§3.2 deletion pruning).
  RdmaImage img = a_->dump(false);
  EXPECT_TRUE(img.mrs.empty());
  // The dense slot is invalid: posting with the stale vlkey fails cleanly.
  VQpn q = qp(a_, pd_a_, cq_a_);
  VQpn qb = qp(b_, pd_b_, cq_b_);
  connect(q, qb);
  SendWr wr;
  wr.opcode = WrOpcode::send;
  wr.sge = {{b1.addr, 64, b1.mr.vlkey}};
  EXPECT_EQ(a_->post_send(q, wr).code(), Errc::permission_denied);
}

TEST_F(GuestTest, VlkeysKeepGrowingAfterDereg) {
  Buf b1 = buf(a_, pd_a_, 4096);
  ASSERT_TRUE(a_->dereg_mr(b1.mr.vlkey).is_ok());
  Buf b2 = buf(a_, pd_a_, 4096);
  // No reuse of freed virtual keys (keeps translation unambiguous).
  EXPECT_GT(b2.mr.vlkey, b1.mr.vlkey);
}

TEST_F(GuestTest, DestroyQpRemovesShadowVmaAndRoadmapEntry) {
  VQpn q = qp(a_, pd_a_, cq_a_);
  std::size_t shadows = 0;
  for (const auto& vma : a_->process().mem().vmas()) {
    if (vma.tag == "qp_shadow") shadows++;
  }
  EXPECT_EQ(shadows, 1u);
  ASSERT_TRUE(a_->destroy_qp(q).is_ok());
  shadows = 0;
  for (const auto& vma : a_->process().mem().vmas()) {
    if (vma.tag == "qp_shadow") shadows++;
  }
  EXPECT_EQ(shadows, 0u);
  EXPECT_TRUE(a_->dump(false).qps.empty());
}

TEST_F(GuestTest, DeallocPdAndBadHandles) {
  VHandle pd = a_->alloc_pd().value();
  EXPECT_TRUE(a_->dealloc_pd(pd).is_ok());
  EXPECT_EQ(a_->dealloc_pd(pd).code(), Errc::not_found);
  EXPECT_EQ(a_->create_cq(0, 999).code(), Errc::not_found);  // bad channel
  EXPECT_EQ(a_->reg_mr(9999, 0x1000, 4096, 0).code(), Errc::not_found);
  EXPECT_EQ(a_->post_send(123456, SendWr{}).code(), Errc::not_found);
  EXPECT_EQ(a_->poll_cq(98765, {}), -1);
}

// ---------------------------------------------------------------------------
// Completion channels (§3.4 CQ events)
// ---------------------------------------------------------------------------

TEST_F(GuestTest, CqEventsThroughVirtualizationLayer) {
  VHandle ch = b_->create_comp_channel().value();
  VHandle evcq = b_->create_cq(128, ch).value();
  VQpn qb = qp(b_, pd_b_, evcq);
  VQpn qa = qp(a_, pd_a_, cq_a_);
  connect(qa, qb);
  Buf sb = buf(a_, pd_a_, 4096);
  Buf rb = buf(b_, pd_b_, 4096);
  RecvWr rwr;
  rwr.sge = {{rb.addr, 4096, rb.mr.vlkey}};
  ASSERT_TRUE(b_->post_recv(qb, rwr).is_ok());
  ASSERT_TRUE(b_->req_notify_cq(evcq).is_ok());
  EXPECT_FALSE(b_->get_cq_event(ch).has_value());

  SendWr wr;
  wr.opcode = WrOpcode::send;
  wr.sge = {{sb.addr, 64, sb.mr.vlkey}};
  ASSERT_TRUE(a_->post_send(qa, wr).is_ok());
  run_for(sim::msec(1));

  auto ev = b_->get_cq_event(ch);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(*ev, evcq);  // translated back to the virtual CQ handle
  b_->ack_cq_events(ch, 1);
}

TEST_F(GuestTest, UnackedCqEventBlocksWbs) {
  VHandle ch = a_->create_comp_channel().value();
  VHandle evcq = a_->create_cq(128, ch).value();
  VQpn qa = qp(a_, pd_a_, evcq);
  VQpn qb = qp(b_, pd_b_, cq_b_);
  connect(qa, qb);
  Buf sb = buf(a_, pd_a_, 4096);
  Buf db = buf(b_, pd_b_, 4096);
  ASSERT_TRUE(a_->req_notify_cq(evcq).is_ok());
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = db.addr;
  wr.rkey = db.mr.vrkey;
  wr.sge = {{sb.addr, 64, sb.mr.vlkey}};
  ASSERT_TRUE(a_->post_send(qa, wr).is_ok());
  run_for(sim::msec(1));
  // Consume the event but do NOT ack it: an unfinished event.
  ASSERT_TRUE(a_->get_cq_event(ch).has_value());

  bool done = false;
  a_->set_wbs_done_callback([&] { done = true; });
  a_->suspend(SuspendScope{true, 0});
  b_->suspend(SuspendScope{false, 10});
  run_for(sim::msec(5));
  EXPECT_FALSE(done) << "WBS must wait for unfinished CQ events (§3.4)";
  a_->ack_cq_events(ch, 1);
  run_for(sim::msec(1));
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------------------
// UD virtualization
// ---------------------------------------------------------------------------

TEST_F(GuestTest, UdAddressingUsesGuestIdsAndCaches) {
  VQpn qa = qp(a_, pd_a_, cq_a_, rnic::QpType::ud);
  VQpn qb = qp(b_, pd_b_, cq_b_, rnic::QpType::ud);
  for (auto [g, q] : {std::pair{a_, qa}, std::pair{b_, qb}}) {
    // UD QPs: just walk the state machine, no peer.
    ASSERT_TRUE(g->raw().modify_qp_init(g->physical_qpn(q).value()).is_ok());
    ASSERT_TRUE(g->raw().modify_qp_rtr(g->physical_qpn(q).value(), 0, 0, 0).is_ok());
    ASSERT_TRUE(g->raw().modify_qp_rts(g->physical_qpn(q).value(), 0).is_ok());
  }
  Buf sb = buf(a_, pd_a_, 4096);
  Buf rb = buf(b_, pd_b_, 4096);
  RecvWr rwr;
  rwr.wr_id = 5;
  rwr.sge = {{rb.addr, 4096, rb.mr.vlkey}};
  ASSERT_TRUE(b_->post_recv(qb, rwr).is_ok());

  const auto fetches = runtimes_[1]->stats().pqpn_fetches;
  SendWr wr;
  wr.opcode = WrOpcode::send;
  wr.remote_host = 20;  // GuestId, not a host id: virtual addressing
  wr.remote_qpn = qb;   // virtual QPN of the peer
  wr.sge = {{sb.addr, 128, sb.mr.vlkey}};
  ASSERT_TRUE(a_->post_send(qa, wr).is_ok());
  run_for(sim::msec(1));
  Cqe cqe;
  ASSERT_EQ(b_->poll_cq(cq_b_, {&cqe, 1}), 1);
  EXPECT_EQ(cqe.wr_id, 5u);
  EXPECT_EQ(runtimes_[1]->stats().pqpn_fetches, fetches + 1);

  // Second datagram: resolution served from the local cache (§3.3 case 2).
  RecvWr rwr2;
  rwr2.sge = {{rb.addr, 4096, rb.mr.vlkey}};
  ASSERT_TRUE(b_->post_recv(qb, rwr2).is_ok());
  ASSERT_TRUE(a_->post_send(qa, wr).is_ok());
  run_for(sim::msec(1));
  EXPECT_EQ(runtimes_[1]->stats().pqpn_fetches, fetches + 1);
}

// ---------------------------------------------------------------------------
// Suspension / fake CQ details
// ---------------------------------------------------------------------------

TEST_F(GuestTest, FakeCqPreservesOrderAcrossRealAndParkedEntries) {
  VQpn qa = qp(a_, pd_a_, cq_a_);
  VQpn qb = qp(b_, pd_b_, cq_b_);
  connect(qa, qb);
  Buf sb = buf(a_, pd_a_, 1 << 16);
  Buf db = buf(b_, pd_b_, 1 << 16);
  auto write = [&](std::uint64_t id) {
    SendWr wr;
    wr.wr_id = id;
    wr.opcode = WrOpcode::rdma_write;
    wr.remote_addr = db.addr;
    wr.rkey = db.mr.vrkey;
    wr.sge = {{sb.addr, 1 << 14, sb.mr.vlkey}};
    ASSERT_TRUE(a_->post_send(qa, wr).is_ok());
  };
  write(1);
  write(2);
  a_->suspend(SuspendScope{true, 0});
  b_->suspend(SuspendScope{false, 10});
  run_for(sim::msec(5));  // WBS parks 1 and 2 in the fake CQ
  ASSERT_TRUE(a_->wbs_done());
  EXPECT_EQ(a_->fake_cq_depth(cq_a_), 2u);
  write(3);  // intercepted
  // Simulate restore-less resume: just lift suspension via the partner
  // switch path isn't available here, so poll the fake entries directly.
  Cqe cqe;
  ASSERT_EQ(a_->poll_cq(cq_a_, {&cqe, 1}), 1);
  EXPECT_EQ(cqe.wr_id, 1u);
  ASSERT_EQ(a_->poll_cq(cq_a_, {&cqe, 1}), 1);
  EXPECT_EQ(cqe.wr_id, 2u);
  EXPECT_EQ(a_->poll_cq(cq_a_, {&cqe, 1}), 0);  // 3 is intercepted, not lost
}

TEST_F(GuestTest, SuspendScopeIsPerPeer) {
  GuestContext* c = runtimes_[2]->create_guest(world_.add_process("c"), 30).value();
  VHandle pd_c = c->alloc_pd().value();
  VHandle cq_c = c->create_cq(256).value();
  VQpn qa1 = qp(a_, pd_a_, cq_a_);
  VQpn qa2 = qp(a_, pd_a_, cq_a_);
  VQpn qb = qp(b_, pd_b_, cq_b_);
  GuestQpAttr attr;
  attr.vpd = pd_c;
  attr.vsend_cq = cq_c;
  attr.vrecv_cq = cq_c;
  VQpn qc = c->create_qp(attr).value();
  connect(qa1, qb);
  ASSERT_TRUE(a_->connect_qp(qa2, 30, qc, 5, 6).is_ok());
  ASSERT_TRUE(c->connect_qp(qc, 10, qa2, 6, 5).is_ok());

  // Partner-style suspension towards guest 20 only.
  a_->suspend(SuspendScope{false, 20});
  EXPECT_TRUE(a_->qp_suspended(qa1));
  EXPECT_FALSE(a_->qp_suspended(qa2)) << "QPs to other peers stay live (§3.1)";
}

TEST_F(GuestTest, QpsToPeerAndConnectedPeers) {
  VQpn qa1 = qp(a_, pd_a_, cq_a_);
  VQpn qa2 = qp(a_, pd_a_, cq_a_);
  VQpn qb1 = qp(b_, pd_b_, cq_b_);
  VQpn qb2 = qp(b_, pd_b_, cq_b_);
  connect(qa1, qb1);
  connect(qa2, qb2);
  auto peers = a_->connected_peers();
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0], 20u);
  EXPECT_EQ(a_->qps_to_peer(20).size(), 2u);
  EXPECT_TRUE(a_->qps_to_peer(99).empty());
}

TEST_F(GuestTest, PartnerPrepareIsIdempotent) {
  VQpn qa = qp(a_, pd_a_, cq_a_);
  VQpn qb = qp(b_, pd_b_, cq_b_);
  connect(qa, qb);
  auto p1 = b_->partner_prepare_qp(qb);
  auto p2 = b_->partner_prepare_qp(qb);
  ASSERT_TRUE(p1.is_ok());
  ASSERT_TRUE(p2.is_ok());
  EXPECT_EQ(p1.value(), p2.value());
  // Switch before connect is rejected.
  GuestContext* fresh = runtimes_[2]->create_guest(world_.add_process("f"), 40).value();
  (void)fresh;
  EXPECT_EQ(b_->partner_connect_qp(999, 1, 1, 1, 1).code(), Errc::not_found);
}

TEST_F(GuestTest, DumpCountersContinueAcrossMigrationBases) {
  VQpn qa = qp(a_, pd_a_, cq_a_);
  VQpn qb = qp(b_, pd_b_, cq_b_);
  connect(qa, qb);
  Buf sb = buf(a_, pd_a_, 4096);
  Buf rb = buf(b_, pd_b_, 4096);
  for (int i = 0; i < 3; ++i) {
    RecvWr rwr;
    rwr.sge = {{rb.addr, 1024, rb.mr.vlkey}};
    ASSERT_TRUE(b_->post_recv(qb, rwr).is_ok());
    SendWr wr;
    wr.opcode = WrOpcode::send;
    wr.sge = {{sb.addr, 64, sb.mr.vlkey}};
    ASSERT_TRUE(a_->post_send(qa, wr).is_ok());
  }
  run_for(sim::msec(1));
  a_->suspend(SuspendScope{true, 0});
  b_->suspend(SuspendScope{false, 10});
  run_for(sim::msec(2));
  RdmaImage img = a_->dump(true);
  ASSERT_EQ(img.counters.size(), 1u);
  EXPECT_EQ(img.counters[0].n_sent, 3u);  // "since creation" (§3.4)
}

}  // namespace
}  // namespace migr::migrlib
