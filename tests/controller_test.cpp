// Error-path and configuration coverage for the migration controller.
#include <gtest/gtest.h>

#include "apps/perftest.hpp"
#include "migr/migration.hpp"
#include "rnic/world.hpp"

namespace migr::migrlib {
namespace {

using common::Errc;

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() {
    for (net::HostId h = 1; h <= 3; ++h) {
      devices_[h] = &world_.add_device(h);
      runtimes_[h] =
          std::make_unique<MigrRdmaRuntime>(directory_, *devices_[h], world_.fabric());
    }
  }

  rnic::World world_;
  GuestDirectory directory_;
  std::unordered_map<net::HostId, rnic::Device*> devices_;
  std::unordered_map<net::HostId, std::unique_ptr<MigrRdmaRuntime>> runtimes_;
};

TEST_F(ControllerTest, RejectsUnknownGuest) {
  MigrationController ctl(world_.loop(), world_.fabric(), directory_);
  auto& dest = world_.add_process("d");
  EXPECT_EQ(ctl.start(999, 2, dest, nullptr, [](const MigrationReport&) {}).code(),
            Errc::not_found);
}

TEST_F(ControllerTest, RejectsUnknownDestinationHost) {
  auto* g = runtimes_[1]->create_guest(world_.add_process("a"), 10).value();
  (void)g;
  MigrationController ctl(world_.loop(), world_.fabric(), directory_);
  auto& dest = world_.add_process("d");
  EXPECT_EQ(ctl.start(10, 77, dest, nullptr, [](const MigrationReport&) {}).code(),
            Errc::not_found);
}

TEST_F(ControllerTest, RejectsSameHostMigration) {
  auto* g = runtimes_[1]->create_guest(world_.add_process("a"), 10).value();
  (void)g;
  MigrationController ctl(world_.loop(), world_.fabric(), directory_);
  auto& dest = world_.add_process("d");
  EXPECT_EQ(ctl.start(10, 1, dest, nullptr, [](const MigrationReport&) {}).code(),
            Errc::invalid_argument);
}

TEST_F(ControllerTest, IdleGuestMigratesInstantlyThroughWbs) {
  // A guest with resources but zero traffic: WBS has nothing to wait for.
  auto* g = runtimes_[1]->create_guest(world_.add_process("a"), 10).value();
  (void)g->alloc_pd().value();
  MigrationController ctl(world_.loop(), world_.fabric(), directory_);
  auto& dest = world_.add_process("d");
  MigrationReport rep;
  bool done = false;
  ASSERT_TRUE(ctl.start(10, 2, dest, nullptr, [&](const MigrationReport& r) {
                   rep = r;
                   done = true;
                 })
                  .is_ok());
  while (!done) world_.loop().run_until(world_.loop().now() + sim::msec(1));
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_LT(rep.wbs_elapsed, sim::msec(1));
  EXPECT_FALSE(rep.wbs_timed_out);
  EXPECT_EQ(directory_.locate(10), 2u);
}

TEST_F(ControllerTest, PrecopyRoundsRespectConfiguredMaximum) {
  auto* g = runtimes_[1]->create_guest(world_.add_process("a"), 10).value();
  auto pd = g->alloc_pd().value();
  // A continuously-dirtied buffer never converges below the threshold; the
  // controller must cap the rounds.
  auto addr = g->process().mem().mmap(1 << 20, "hot").value();
  (void)g->reg_mr(pd, addr, 1 << 20, rnic::kAccessLocalWrite).value();
  auto dirtier = world_.loop().schedule_every(sim::usec(50), [&] {
    for (std::uint64_t off = 0; off < (1 << 20); off += 4096) {
      std::uint8_t b = 1;
      (void)g->process().mem().write(addr + off, {&b, 1});
    }
  });

  MigrationOptions opts;
  opts.max_precopy_rounds = 2;
  opts.dirty_page_threshold = 1;
  MigrationController ctl(world_.loop(), world_.fabric(), directory_, opts);
  auto& dest = world_.add_process("d");
  MigrationReport rep;
  bool done = false;
  ASSERT_TRUE(ctl.start(10, 2, dest, nullptr, [&](const MigrationReport& r) {
                   rep = r;
                   done = true;
                 })
                  .is_ok());
  while (!done) world_.loop().run_until(world_.loop().now() + sim::msec(1));
  dirtier.cancel();
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.precopy_rounds, 2u);
  // The hot pages went through the final (stop-and-copy) transfer.
  EXPECT_GT(rep.final_bytes, 1u << 19);
}

TEST_F(ControllerTest, AbortMidPrecopyCountsOnlyAppliedRounds) {
  auto* g = runtimes_[1]->create_guest(world_.add_process("a"), 10).value();
  auto pd = g->alloc_pd().value();
  // Hot 1 MiB buffer: every round re-dirties everything, so pre-copy keeps
  // iterating (~12 ms dump per round) until the partition kills it.
  auto addr = g->process().mem().mmap(1 << 20, "hot").value();
  (void)g->reg_mr(pd, addr, 1 << 20, rnic::kAccessLocalWrite).value();
  auto dirtier = world_.loop().schedule_every(sim::usec(50), [&] {
    for (std::uint64_t off = 0; off < (1 << 20); off += 4096) {
      std::uint8_t b = 1;
      (void)g->process().mem().write(addr + off, {&b, 1});
    }
  });

  // Arm the SLI hub with a record for the guest so the abort's window
  // handling is observable (no traffic taps needed for phase tracking).
  auto& hub = obs::SliHub::global();
  hub.clear();
  hub.set_enabled(true);
  hub.set_retransmit_source(10, world_.loop().now(), [] { return std::uint64_t{0}; });

  MigrationOptions opts;
  opts.max_precopy_rounds = 10;
  opts.dirty_page_threshold = 1;
  opts.transfer_timeout = sim::msec(5);
  opts.max_transfer_retries = 1;
  opts.transfer_retry_backoff = sim::msec(1);
  MigrationController ctl(world_.loop(), world_.fabric(), directory_, opts);
  auto& dest = world_.add_process("d");
  MigrationReport rep;
  bool done = false;
  ASSERT_TRUE(ctl.start(10, 2, dest, nullptr, [&](const MigrationReport& r) {
                   rep = r;
                   done = true;
                 })
                  .is_ok());
  // Let the initial dump and at least one round land, then cut the
  // destination off mid-iteration: the in-flight round transfer times out
  // and the controller rolls back.
  world_.loop().schedule_in(sim::msec(30), [&] {
    world_.fabric().set_partitioned(2, true);
  });
  while (!done) world_.loop().run_until(world_.loop().now() + sim::msec(1));
  dirtier.cancel();

  EXPECT_FALSE(rep.ok);
  EXPECT_TRUE(rep.aborted);
  EXPECT_EQ(rep.abort_phase, "precopy");
  EXPECT_TRUE(rep.source_resumed);

  // Accounting: the interrupted round counts in neither rounds nor bytes.
  // Everything credited as a pre-copy round was delivered AND applied, while
  // the attempted byte counter has also seen the doomed (re)sends.
  EXPECT_GE(rep.precopy_rounds, 1u);
  EXPECT_LT(rep.precopy_rounds, 10u);
  EXPECT_LE(rep.precopy_bytes, rep.xfer_bytes_delivered);
  EXPECT_GT(rep.xfer_bytes_attempted, rep.xfer_bytes_delivered);

  // Never froze: no blackout window, so the waterfall must be empty (a
  // non-empty one would claim slices for a window that never opened).
  EXPECT_EQ(rep.freeze_at, 0);
  EXPECT_TRUE(rep.waterfall.empty());

  // The SLI pipeline saw precopy windows open; the abort must close them
  // back to idle (rolled-back service, no recovery phase).
  const obs::GuestSli* sli = hub.find(10);
  ASSERT_NE(sli, nullptr);
  EXPECT_EQ(sli->phase(), obs::ServicePhase::idle);
  hub.clear();
  hub.set_enabled(false);
  world_.fabric().set_partitioned(2, false);
}

TEST_F(ControllerTest, BackToBackMigrationsOfSameGuest) {
  auto* g = runtimes_[1]->create_guest(world_.add_process("a"), 10).value();
  auto pd = g->alloc_pd().value();
  auto addr = g->process().mem().mmap(4096, "buf").value();
  auto mr = g->reg_mr(pd, addr, 4096, rnic::kAccessLocalWrite).value();
  (void)mr;
  for (net::HostId hop : {2u, 3u, 1u}) {
    MigrationController ctl(world_.loop(), world_.fabric(), directory_);
    auto& dest = world_.add_process("d" + std::to_string(hop));
    MigrationReport rep;
    bool done = false;
    ASSERT_TRUE(ctl.start(10, hop, dest, nullptr, [&](const MigrationReport& r) {
                     rep = r;
                     done = true;
                   })
                    .is_ok());
    while (!done) world_.loop().run_until(world_.loop().now() + sim::msec(1));
    ASSERT_TRUE(rep.ok) << "hop to " << hop << ": " << rep.error;
    EXPECT_EQ(directory_.locate(10), hop);
  }
  // MR still usable after three hops: re-register-free, same virtual key.
  EXPECT_EQ(g->mr_count(), 1u);
}

}  // namespace
}  // namespace migr::migrlib
