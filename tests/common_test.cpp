#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/ring.hpp"
#include "common/rng.hpp"

namespace migr::common {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::ok);
  EXPECT_EQ(st.to_string(), "ok");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = err(Errc::not_found, "no such QP");
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::not_found);
  EXPECT_EQ(st.to_string(), "not_found: no such QP");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = err(Errc::timeout, "slow");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::timeout);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> half(int v) {
  if (v % 2 != 0) return err(Errc::invalid_argument, "odd");
  return v / 2;
}

Status quarter_check(int v, int* out) {
  MIGR_ASSIGN_OR_RETURN(auto h, half(v));
  MIGR_ASSIGN_OR_RETURN(auto q, half(h));
  *out = q;
  return Status::ok();
}

TEST(Result, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(quarter_check(8, &out).is_ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(quarter_check(6, &out).code(), Errc::invalid_argument);
}

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(7);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.5);
  w.boolean(true);
  w.str("hello");

  ByteReader r{w.data()};
  EXPECT_EQ(r.u8().value(), 7);
  EXPECT_EQ(r.u16().value(), 0xBEEF);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_EQ(r.f64().value(), 3.5);
  EXPECT_TRUE(r.boolean().value());
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncationIsAnErrorNotACrash) {
  ByteWriter w;
  w.u64(1);
  Bytes data = std::move(w).take();
  data.resize(4);
  ByteReader r{data};
  EXPECT_EQ(r.u64().code(), Errc::invalid_argument);
}

TEST(Bytes, LengthPrefixedTruncation) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes follow, but nothing does
  ByteReader r{w.data()};
  EXPECT_EQ(r.bytes().code(), Errc::invalid_argument);
}

TEST(Ring, PushPopFifo) {
  Ring<int> ring(4);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.push(99));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ring.pop(), i);
  EXPECT_TRUE(ring.empty());
}

TEST(Ring, MonotonicHeadTail) {
  Ring<int> ring(2);
  ring.push(1);
  ring.push(2);
  ring.pop();
  ring.push(3);
  EXPECT_EQ(ring.head(), 1u);
  EXPECT_EQ(ring.tail(), 3u);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.at(0), 2);
  EXPECT_EQ(ring.at(1), 3);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    const auto v = rng.range(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

}  // namespace
}  // namespace migr::common
