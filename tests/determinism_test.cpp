// Determinism guard for the simulator fast path: the 8-host drain scenario
// runs twice in one process and must render byte-identical
// format_drain_report output — once on a fault-free fabric (where the
// transport's burst-coalesced emission and pooled-event fast path are
// active) and once under a seeded lossy fault plan (where the transport
// degrades to per-packet fidelity). Any hidden global state, pool-reuse
// ordering effect, or wall-clock leakage into the sim shows up as a diff.
//
// Set MIGR_DUMP_DRAIN_REPORT=<dir> to also write the rendered reports to
// <dir>/drain_report_{clean,lossy}.txt — used to diff the fast path against
// a pre-change baseline build.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "cluster/drain.hpp"
#include "fault/fault.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sli.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace migr::cluster {
namespace {

// Mixed message sizes: 8 KiB messages packetize into multi-packet trains
// (burst-eligible on a clean fabric); 1 KiB messages stay single-packet.
TrafficProfile stream_profile() {
  TrafficProfile p;
  p.send_interval = sim::usec(60);
  p.msg_bytes = 8192;
  p.extra_mem_bytes = 1 << 20;
  p.dirty_interval = sim::msec(1);
  return p;
}

TrafficProfile chatty_profile() {
  TrafficProfile p;
  p.send_interval = sim::usec(40);
  p.msg_bytes = 1024;
  p.extra_mem_bytes = 1 << 20;
  p.dirty_interval = sim::msec(1);
  return p;
}

std::string run_drain_once(bool lossy, std::uint32_t streams = 1,
                           bool suppress = false, bool critical_path = false) {
  ClusterConfig cfg;
  cfg.hosts = 8;
  cfg.seed = 7;
  ClusterModel model(cfg);
  for (GuestId g = 0; g < 6; ++g) {
    const TrafficProfile prof = (g % 2 == 0) ? stream_profile() : chatty_profile();
    EXPECT_TRUE(model.add_guest(1, 100 + g, prof).is_ok());
    EXPECT_TRUE(model.add_guest(2 + g, 200 + g, prof).is_ok());
    EXPECT_TRUE(model.connect_guests(100 + g, 200 + g).is_ok());
  }
  model.run_for(sim::msec(5));

  fault::ScenarioRunner scenario(model.loop(), model.fabric());
  if (lossy) {
    fault::FaultPlan plan;
    plan.baseline(0.01);
    scenario.run(plan);
  }

  SchedulerConfig scfg;
  scfg.limits.max_concurrent_fleet = 4;
  scfg.limits.max_concurrent_per_source = 4;
  scfg.limits.max_concurrent_per_dest = 4;
  if (streams > 1) {
    scfg.migration.xfer_streams = streams;
    scfg.migration.xfer_stream_gbps = 25.0;
  }
  scfg.migration.suppress_pages = suppress;
  scfg.migration.critical_path = critical_path;
  MigrationScheduler sched(model, scfg);
  DrainWorkflow drain(model, sched);
  const DrainReport rep = drain.run(1);
  EXPECT_TRUE(rep.ok) << format_drain_report(rep);
  EXPECT_EQ(model.audit_stuck_qps(sim::msec(50)), 0u);
  // For the mux/suppression legs, pin the JSON artifact alongside the text
  // rendering: it carries the per-stream counters and suppression rollups the
  // text report elides, so a nondeterministic stream shard or retry shows up
  // as a byte diff. The legacy config keeps the text-only rendering because
  // the committed pre-change baselines were captured in that format.
  std::string rendered = format_drain_report(rep);
  if (streams > 1 || suppress) {
    rendered += drain_report_json(rep, "precopy", "determinism");
  }
  return rendered;
}

void maybe_dump(const std::string& rendered, const char* name) {
  const char* dir = std::getenv("MIGR_DUMP_DRAIN_REPORT");
  if (dir == nullptr || *dir == '\0') return;
  std::ofstream out(std::string(dir) + "/drain_report_" + name + ".txt");
  out << rendered;
}

TEST(DeterminismTest, FaultFreeDrainReportIsByteIdenticalAcrossRuns) {
  const std::string first = run_drain_once(/*lossy=*/false);
  const std::string second = run_drain_once(/*lossy=*/false);
  EXPECT_EQ(first, second);
  maybe_dump(first, "clean");
}

TEST(DeterminismTest, LossyDrainReportIsByteIdenticalAcrossRuns) {
  const std::string first = run_drain_once(/*lossy=*/true);
  const std::string second = run_drain_once(/*lossy=*/true);
  EXPECT_EQ(first, second);
  maybe_dump(first, "lossy");
}

// ---------------------------------------------------------------------------
// Parallel-stream mux (multifd) determinism
// ---------------------------------------------------------------------------

// With 4 transfer streams the mux shards each image round-robin across
// `migr.xfer.<id>.<k>` ctrl streams; sharding, per-stream sequencing, and
// reassembly must be a pure function of the seed. These legs run twice and
// compare text + JSON (per-stream counters included) byte-for-byte. No
// committed baseline: the mux-on config did not exist before this change.
TEST(DeterminismTest, MultifdCleanDrainReportIsByteIdenticalAcrossRuns) {
  const std::string first = run_drain_once(/*lossy=*/false, /*streams=*/4);
  const std::string second = run_drain_once(/*lossy=*/false, /*streams=*/4);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, MultifdLossyDrainReportIsByteIdenticalAcrossRuns) {
  const std::string first = run_drain_once(/*lossy=*/true, /*streams=*/4);
  const std::string second = run_drain_once(/*lossy=*/true, /*streams=*/4);
  EXPECT_EQ(first, second);
}

// Suppression rides the same serialized stream of bytes, so flipping it on
// must stay deterministic too — including the zero/delta accounting that the
// JSON rendering pins per run.
TEST(DeterminismTest, MultifdSuppressedDrainReportIsByteIdenticalAcrossRuns) {
  const std::string first =
      run_drain_once(/*lossy=*/true, /*streams=*/4, /*suppress=*/true);
  const std::string second =
      run_drain_once(/*lossy=*/true, /*streams=*/4, /*suppress=*/true);
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// Pre-change baseline guard
// ---------------------------------------------------------------------------

// tests/data/drain_report_{clean,lossy}.txt were captured (via
// MIGR_DUMP_DRAIN_REPORT) from the build preceding the adaptive pre-copy /
// post-copy work. With the dirty-rate estimator disabled — the default — the
// reworked controller must render the same drains byte-identically: the
// accounting fixes move *when* counters increment, never which events run.
std::string read_baseline(const char* name) {
  const std::string path =
      std::string(MIGR_TEST_DATA_DIR) + "/drain_report_" + name + ".txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing baseline " << path;
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return body;
}

TEST(DeterminismTest, CleanDrainReportMatchesPreChangeBaseline) {
  EXPECT_EQ(run_drain_once(/*lossy=*/false), read_baseline("clean"));
}

TEST(DeterminismTest, LossyDrainReportMatchesPreChangeBaseline) {
  EXPECT_EQ(run_drain_once(/*lossy=*/true), read_baseline("lossy"));
}

// ---------------------------------------------------------------------------
// Fast path vs per-packet fallback, recorder on vs off
// ---------------------------------------------------------------------------

struct InstrumentedRun {
  std::string report;   // format_drain_report rendering
  std::string metrics;  // registry snapshot, "sim." excluded
  std::uint64_t spans = 0;  // tracer events emitted during the run
};

// One smaller clean drain (4 guests, 6 hosts) with the full observability
// stack armed: tracing on, the flight recorder per `recorder_on`, and the
// fabric optionally forced off its burst fast path. Registry/tracer/recorder
// are reset at entry so each run starts from the same observability state.
InstrumentedRun run_instrumented(bool force_slow, bool recorder_on) {
  obs::Registry::global().reset();
  auto& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  auto& rec = obs::FlightRecorder::global();
  rec.clear();
  rec.set_enabled(recorder_on);

  InstrumentedRun out;
  {
    ClusterConfig cfg;
    cfg.hosts = 6;
    cfg.seed = 7;
    ClusterModel model(cfg);
    model.fabric().set_force_slow_path(force_slow);
    for (GuestId g = 0; g < 4; ++g) {
      const TrafficProfile prof = (g % 2 == 0) ? stream_profile() : chatty_profile();
      EXPECT_TRUE(model.add_guest(1, 100 + g, prof).is_ok());
      EXPECT_TRUE(model.add_guest(2 + g, 200 + g, prof).is_ok());
      EXPECT_TRUE(model.connect_guests(100 + g, 200 + g).is_ok());
    }
    model.run_for(sim::msec(5));

    SchedulerConfig scfg;
    scfg.limits.max_concurrent_fleet = 4;
    scfg.limits.max_concurrent_per_source = 4;
    scfg.limits.max_concurrent_per_dest = 4;
    MigrationScheduler sched(model, scfg);
    DrainWorkflow drain(model, sched);
    const DrainReport rep = drain.run(1);
    EXPECT_TRUE(rep.ok) << format_drain_report(rep);
    out.report = format_drain_report(rep);
  }

  // Everything in the registry except "sim.*" must be transport-visible and
  // thus path-independent; sim.* is wall-clock and event-count bookkeeping,
  // which legitimately differs (the slow path schedules per-packet events,
  // the fast path one train).
  for (const auto& e : obs::Registry::global().snapshot()) {
    if (e.name.rfind("sim.", 0) == 0) continue;
    out.metrics += e.name + "=" + std::to_string(e.value) + "," + std::to_string(e.count) + "\n";
  }
  out.spans = tracer.total_emitted();
  tracer.set_enabled(false);
  tracer.clear();
  rec.set_enabled(false);
  rec.clear();
  return out;
}

TEST(DeterminismTest, ForcedSlowPathMatchesFastPathMetricsAndSpans) {
  const InstrumentedRun fast = run_instrumented(/*force_slow=*/false, /*recorder_on=*/false);
  const InstrumentedRun slow = run_instrumented(/*force_slow=*/true, /*recorder_on=*/false);
  EXPECT_EQ(fast.report, slow.report);
  EXPECT_EQ(fast.metrics, slow.metrics);
  EXPECT_EQ(fast.spans, slow.spans);
}

TEST(DeterminismTest, RecorderOnDoesNotPerturbEitherPath) {
  const InstrumentedRun fast_on = run_instrumented(/*force_slow=*/false, /*recorder_on=*/true);
  const InstrumentedRun slow_on = run_instrumented(/*force_slow=*/true, /*recorder_on=*/true);
  EXPECT_EQ(fast_on.report, slow_on.report);
  EXPECT_EQ(fast_on.metrics, slow_on.metrics);
  EXPECT_EQ(fast_on.spans, slow_on.spans);

  // And the recorder itself must be invisible to the simulation: the same
  // run with it off renders the identical report.
  const InstrumentedRun fast_off = run_instrumented(/*force_slow=*/false, /*recorder_on=*/false);
  EXPECT_EQ(fast_on.report, fast_off.report);
  EXPECT_EQ(fast_on.spans, fast_off.spans);
}

// ---------------------------------------------------------------------------
// Brownout SLI pipeline on vs off
// ---------------------------------------------------------------------------

struct SliRun {
  std::string report;   // format_drain_report rendering
  std::string metrics;  // registry snapshot, "sim." and "slo." excluded
  std::string timeline; // SliHub window CSV (empty when SLI is off)
};

// The lossy 8-host drain with the SLI hub optionally armed (plus a burn-rate
// engine, observe-only: the scheduler's slo_defer stays off). The pipeline
// must be invisible to the simulation — it never schedules loop events — so
// the drain report and every non-sim./slo. metric must not move when it is
// switched on.
SliRun run_with_sli(bool sli_on) {
  obs::Registry::global().reset();
  auto& hub = obs::SliHub::global();
  hub.clear();
  hub.set_enabled(sli_on);
  std::vector<obs::SloRule> rules;
  std::unique_ptr<obs::SloEngine> engine;
  if (sli_on) {
    std::string err;
    EXPECT_TRUE(obs::parse_slo_spec("p99<60us,budget=0.05,fast=400us,slow=4ms,burn=2",
                                    &rules, &err))
        << err;
    engine = std::make_unique<obs::SloEngine>(std::move(rules));
    hub.set_slo_engine(engine.get());
  }

  SliRun out;
  {
    ClusterConfig cfg;
    cfg.hosts = 8;
    cfg.seed = 7;
    ClusterModel model(cfg);
    model.enable_sli(hub);  // no-op taps while the hub is disabled
    for (GuestId g = 0; g < 6; ++g) {
      const TrafficProfile prof = (g % 2 == 0) ? stream_profile() : chatty_profile();
      EXPECT_TRUE(model.add_guest(1, 100 + g, prof).is_ok());
      EXPECT_TRUE(model.add_guest(2 + g, 200 + g, prof).is_ok());
      EXPECT_TRUE(model.connect_guests(100 + g, 200 + g).is_ok());
    }
    model.run_for(sim::msec(5));

    fault::ScenarioRunner scenario(model.loop(), model.fabric());
    fault::FaultPlan plan;
    plan.baseline(0.01);
    scenario.run(plan);

    SchedulerConfig scfg;
    scfg.limits.max_concurrent_fleet = 4;
    scfg.limits.max_concurrent_per_source = 4;
    scfg.limits.max_concurrent_per_dest = 4;
    MigrationScheduler sched(model, scfg);
    DrainWorkflow drain(model, sched);
    const DrainReport rep = drain.run(1);
    EXPECT_TRUE(rep.ok) << format_drain_report(rep);
    out.report = format_drain_report(rep);
    // Close live windows while the retransmit sources (transport objects
    // owned by the model) are still alive.
    hub.flush(model.loop().now());
  }

  for (const auto& e : obs::Registry::global().snapshot()) {
    if (e.name.rfind("sim.", 0) == 0) continue;
    if (e.name.rfind("slo.", 0) == 0) continue;  // only exists when armed
    out.metrics += e.name + "=" + std::to_string(e.value) + "," + std::to_string(e.count) + "\n";
  }
  if (sli_on) out.timeline = hub.export_csv();
  hub.set_slo_engine(nullptr);
  hub.clear();
  hub.set_enabled(false);
  return out;
}

TEST(DeterminismTest, SliPipelineIsInvisibleToTheSimulation) {
  const SliRun off = run_with_sli(/*sli_on=*/false);
  const SliRun on = run_with_sli(/*sli_on=*/true);
  EXPECT_EQ(off.report, on.report);
  EXPECT_EQ(off.metrics, on.metrics);
  EXPECT_TRUE(off.timeline.empty());
  EXPECT_FALSE(on.timeline.empty());
}

TEST(DeterminismTest, SliTimelineIsByteIdenticalAcrossRuns) {
  const SliRun first = run_with_sli(/*sli_on=*/true);
  const SliRun second = run_with_sli(/*sli_on=*/true);
  EXPECT_EQ(first.report, second.report);
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_EQ(first.timeline, second.timeline);
}

// ---------------------------------------------------------------------------
// Critical-path attribution on vs off
// ---------------------------------------------------------------------------

// The CpRecorder only appends already-known sim times to a vector — it must
// never schedule events, consume RNG, or otherwise touch the timeline. So a
// cp-on drain report is the cp-off report plus the purely additive
// "critical_path ..." / "cp edge=..." rollup lines, and every non-obs.*
// metric is identical.
std::string strip_cp_lines(const std::string& rendered) {
  std::string out;
  std::size_t pos = 0;
  while (pos < rendered.size()) {
    std::size_t eol = rendered.find('\n', pos);
    if (eol == std::string::npos) eol = rendered.size() - 1;
    const std::string line = rendered.substr(pos, eol - pos + 1);
    if (line.rfind("critical_path ", 0) != 0 && line.rfind("cp edge=", 0) != 0) {
      out += line;
    }
    pos = eol + 1;
  }
  return out;
}

struct CpRun {
  std::string report;
  std::string metrics;  // registry snapshot, "sim."/"obs." excluded
};

CpRun run_with_cp(bool cp_on) {
  obs::Registry::global().reset();
  CpRun out;
  out.report = run_drain_once(/*lossy=*/true, /*streams=*/1,
                              /*suppress=*/false, /*critical_path=*/cp_on);
  for (const auto& e : obs::Registry::global().snapshot()) {
    if (e.name.rfind("sim.", 0) == 0) continue;
    if (e.name.rfind("obs.", 0) == 0) continue;  // tracer bookkeeping
    out.metrics += e.name + "=" + std::to_string(e.value) + "," + std::to_string(e.count) + "\n";
  }
  return out;
}

TEST(DeterminismTest, CriticalPathRecorderIsInvisibleToTheSimulation) {
  const CpRun off = run_with_cp(/*cp_on=*/false);
  const CpRun on = run_with_cp(/*cp_on=*/true);
  // cp-on renders extra rollup lines; everything else is byte-identical.
  EXPECT_NE(on.report, off.report);
  EXPECT_EQ(strip_cp_lines(on.report), off.report);
  EXPECT_EQ(on.metrics, off.metrics);
}

TEST(DeterminismTest, CriticalPathReportIsByteIdenticalAcrossRuns) {
  const CpRun first = run_with_cp(/*cp_on=*/true);
  const CpRun second = run_with_cp(/*cp_on=*/true);
  EXPECT_EQ(first.report, second.report);
  EXPECT_EQ(first.metrics, second.metrics);
}

}  // namespace
}  // namespace migr::cluster
