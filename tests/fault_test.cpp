// Fault-injection subsystem + migration abort/rollback:
//
//  * FaultPlan/ScenarioRunner: window composition (max semantics, partition
//    refcounts), heal ordering, seeded-plan determinism down to the packet
//    counters;
//  * MigrationController abort paths: destination partition during the
//    image transfer (retry budget exhausted -> abort), WBS timeout with the
//    abort policy enabled, and the legacy forced-stop-and-copy default;
//  * rollback cleanliness: after an abort the source keeps serving, no QP
//    is left stuck, and a later migration of the same guest succeeds.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/perftest.hpp"
#include "fault/fault.hpp"
#include "migr/migration.hpp"
#include "rnic/world.hpp"

namespace migr {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan / ScenarioRunner
// ---------------------------------------------------------------------------

TEST(ScenarioRunner, OverlappingWindowsComposeByMaxAndHealCleanly) {
  sim::EventLoop loop;
  net::Fabric fabric(loop, {}, /*seed=*/1);
  fault::ScenarioRunner runner(loop, fabric);

  fault::FaultPlan plan;
  plan.baseline(0.01)
      .loss_burst(sim::msec(1), sim::msec(4), 0.2)
      .loss_burst(sim::msec(2), sim::msec(1), 0.5)
      .partition(sim::msec(1), sim::msec(2), 7)
      .partition(sim::msec(2), sim::msec(2), 7)
      .ctrl_delay(sim::msec(3), sim::msec(1), sim::usec(100));
  runner.run(plan);

  // Baseline is installed immediately.
  EXPECT_DOUBLE_EQ(fabric.faults().data_loss_prob, 0.01);
  EXPECT_FALSE(fabric.partitioned(7));

  loop.run_until(sim::msec(1) + sim::usec(1));
  EXPECT_DOUBLE_EQ(fabric.faults().data_loss_prob, 0.2);
  EXPECT_TRUE(fabric.partitioned(7));

  // Both bursts and both partition windows overlap here: max loss wins, the
  // partition refcount is 2.
  loop.run_until(sim::msec(2) + sim::usec(500));
  EXPECT_DOUBLE_EQ(fabric.faults().data_loss_prob, 0.5);
  EXPECT_TRUE(fabric.partitioned(7));

  // Burst #2 healed, partition window #1 healed (refcount 1 -> still cut).
  loop.run_until(sim::msec(3) + sim::usec(500));
  EXPECT_DOUBLE_EQ(fabric.faults().data_loss_prob, 0.2);
  EXPECT_TRUE(fabric.partitioned(7));
  EXPECT_EQ(fabric.faults().ctrl_delay, sim::usec(100));

  // Second partition window + ctrl delay healed.
  loop.run_until(sim::msec(4) + sim::usec(500));
  EXPECT_FALSE(fabric.partitioned(7));
  EXPECT_EQ(fabric.faults().ctrl_delay, 0);

  // Everything healed: back to the baseline, ledger balanced.
  loop.run_until(sim::msec(6));
  EXPECT_DOUBLE_EQ(fabric.faults().data_loss_prob, 0.01);
  EXPECT_FALSE(runner.any_active());
  EXPECT_EQ(runner.applied(), 5u);
  EXPECT_EQ(runner.healed(), 5u);
}

TEST(ScenarioRunner, SeededPlanIsDeterministicDownToPacketCounters) {
  // Bursts inside the first ~150 us so they overlap the 500-message stream
  // below (2 MB at 100 Gbps is on the order of 170 us).
  fault::FaultPlan plan = fault::FaultPlan::random_bursts(
      /*seed=*/7, /*bursts=*/5, sim::usec(10), sim::usec(150), sim::usec(50), 0.3);
  fault::FaultPlan plan2 = fault::FaultPlan::random_bursts(
      /*seed=*/7, /*bursts=*/5, sim::usec(10), sim::usec(150), sim::usec(50), 0.3);
  ASSERT_EQ(plan.events().size(), plan2.events().size());
  for (std::size_t i = 0; i < plan.events().size(); ++i) {
    EXPECT_EQ(plan.events()[i].at, plan2.events()[i].at);
  }

  // The same (world seed, plan) pair must replay the identical packet
  // history: run the same lossy stream twice in independent worlds.
  auto run_world = [&plan]() {
    struct Out {
      std::uint64_t dropped = 0;
      std::uint64_t tx = 0;
      std::uint64_t msgs = 0;
    } out;
    rnic::World world({}, /*seed=*/99);
    auto& dev_a = world.add_device(1);
    auto& dev_b = world.add_device(2);
    (void)dev_a;
    (void)dev_b;
    migrlib::GuestDirectory dir;
    migrlib::MigrRdmaRuntime rt1(dir, dev_a, world.fabric());
    migrlib::MigrRdmaRuntime rt2(dir, dev_b, world.fabric());
    fault::ScenarioRunner runner(world.loop(), world.fabric());
    runner.run(plan);
    apps::PerftestConfig cfg;
    cfg.num_qps = 1;
    cfg.msg_size = 4096;
    cfg.queue_depth = 8;
    cfg.opcode = rnic::WrOpcode::rdma_write;
    cfg.max_messages_per_qp = 500;
    apps::PerftestPeer tx(rt1, world.add_process("tx"), 1, apps::PerftestPeer::Role::sender,
                          cfg);
    apps::PerftestPeer rx(rt2, world.add_process("rx"), 2,
                          apps::PerftestPeer::Role::receiver, cfg);
    EXPECT_TRUE(apps::PerftestPeer::connect_pair(tx, 0, rx, 0).is_ok());
    tx.start();
    rx.start();
    world.loop().run_until(sim::msec(5));
    out.dropped = world.fabric().stats(1).data_packets_dropped;
    out.tx = world.fabric().stats(1).data_packets_tx;
    out.msgs = tx.stats().completed_msgs;
    return std::make_tuple(out.dropped, out.tx, out.msgs);
  };
  const auto first = run_world();
  const auto second = run_world();
  EXPECT_GT(std::get<0>(first), 0u) << "plan never dropped a packet";
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// Migration abort/rollback
// ---------------------------------------------------------------------------

// Three hosts: guest 1 (tx) on host 1, its partner guest 2 (rx) on host 3;
// migrations move guest 1 to host 2.
struct MigrationHarness {
  rnic::World world;
  std::vector<rnic::Device*> devices;
  migrlib::GuestDirectory dir;
  std::vector<std::unique_ptr<migrlib::MigrRdmaRuntime>> rts;
  std::unique_ptr<apps::PerftestPeer> tx;
  std::unique_ptr<apps::PerftestPeer> rx;

  explicit MigrationHarness(std::uint64_t seed = 42) : world({}, seed) {
    for (net::HostId h = 1; h <= 3; ++h) {
      devices.push_back(&world.add_device(h));
      rts.push_back(
          std::make_unique<migrlib::MigrRdmaRuntime>(dir, *devices.back(), world.fabric()));
    }
    apps::PerftestConfig cfg;
    cfg.num_qps = 2;
    cfg.msg_size = 8192;
    cfg.queue_depth = 16;
    cfg.opcode = rnic::WrOpcode::rdma_write;
    tx = std::make_unique<apps::PerftestPeer>(*rts[0], world.add_process("tx"), 1,
                                              apps::PerftestPeer::Role::sender, cfg);
    rx = std::make_unique<apps::PerftestPeer>(*rts[2], world.add_process("rx"), 2,
                                              apps::PerftestPeer::Role::receiver, cfg);
    for (std::uint32_t i = 0; i < cfg.num_qps; ++i) {
      EXPECT_TRUE(apps::PerftestPeer::connect_pair(*tx, i, *rx, i).is_ok());
    }
    tx->start();
    rx->start();
    world.loop().run_until(world.loop().now() + sim::msec(3));
  }

  migrlib::MigrationReport migrate(migrlib::MigrationOptions opts) {
    auto& dest = world.add_process("dest");
    migrlib::MigrationController ctl(world.loop(), world.fabric(), dir, opts);
    migrlib::MigrationReport report;
    bool done = false;
    EXPECT_TRUE(ctl.start(1, 2, dest, tx.get(), [&](const migrlib::MigrationReport& r) {
                     report = r;
                     done = true;
                   })
                    .is_ok());
    const sim::TimeNs deadline = world.loop().now() + sim::sec(60);
    while (!done && world.loop().now() < deadline) {
      world.loop().run_until(world.loop().now() + sim::msec(1));
    }
    EXPECT_TRUE(done) << "migration neither completed nor aborted";
    return report;
  }

  // Source service still making forward progress?
  bool traffic_flowing() {
    const auto before = tx->stats().completed_msgs;
    world.loop().run_until(world.loop().now() + sim::msec(10));
    return tx->stats().completed_msgs > before;
  }

  std::vector<rnic::Qpn> stuck_qps(sim::DurationNs stale_after = sim::msec(200)) {
    std::vector<rnic::Qpn> all;
    for (auto* dev : devices) {
      auto s = dev->audit_stuck_qps(stale_after);
      all.insert(all.end(), s.begin(), s.end());
    }
    return all;
  }
};

TEST(MigrationAbort, DestPartitionDuringTransferAbortsAndSourceResumes) {
  MigrationHarness h;

  // Cut the destination off for 500 ms, starting now: every ctrl-plane
  // transfer attempt into host 2 silently vanishes.
  fault::ScenarioRunner runner(h.world.loop(), h.world.fabric());
  fault::FaultPlan plan;
  plan.partition(/*at=*/0, /*duration=*/sim::msec(300), /*host=*/2);
  runner.run(plan);

  migrlib::MigrationOptions opts;
  opts.transfer_timeout = sim::msec(20);
  opts.max_transfer_retries = 2;
  opts.transfer_retry_backoff = sim::msec(5);
  const auto report = h.migrate(opts);

  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.aborted);
  EXPECT_FALSE(report.abort_reason.empty());
  EXPECT_FALSE(report.abort_phase.empty());
  EXPECT_TRUE(report.source_resumed);
  EXPECT_GE(report.transfer_retries, 1u);

  // Rollback cleanliness: the source keeps serving and nothing is stuck.
  EXPECT_TRUE(h.traffic_flowing());
  h.world.loop().run_until(h.world.loop().now() + sim::msec(300));
  EXPECT_TRUE(h.stuck_qps().empty());

  // Once the partition heals, the same guest migrates successfully — the
  // abort left no half-staged resources or dangling partner QPs behind.
  ASSERT_FALSE(h.world.fabric().partitioned(2));
  const auto second = h.migrate(migrlib::MigrationOptions{});
  EXPECT_TRUE(second.ok) << second.error;
  EXPECT_FALSE(second.aborted);
  EXPECT_TRUE(h.traffic_flowing());
  EXPECT_EQ(h.tx->stats().errors, 0u);
  EXPECT_EQ(h.rx->stats().content_corruptions, 0u);
}

TEST(MigrationAbort, WbsTimeoutAbortPolicyRollsBack) {
  MigrationHarness h;
  // A WBS deadline shorter than one fabric RTT can never be met while
  // partner traffic is in flight; with the abort policy the controller must
  // cancel and resume the source instead of forcing stop-and-copy.
  migrlib::MigrationOptions opts;
  opts.wbs_timeout = sim::usec(1);
  opts.abort_on_wbs_timeout = true;
  const auto report = h.migrate(opts);

  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.aborted);
  EXPECT_TRUE(report.source_resumed);
  EXPECT_FALSE(report.abort_reason.empty());
  EXPECT_TRUE(h.traffic_flowing());
  h.world.loop().run_until(h.world.loop().now() + sim::msec(300));
  EXPECT_TRUE(h.stuck_qps().empty());
}

TEST(MigrationAbort, WbsTimeoutDefaultStillForcesStopAndCopy) {
  MigrationHarness h;
  // Same impossible deadline, default policy: §3.4 forced stop-and-copy.
  // The migration completes; in-flight WRs were harvested for replay.
  migrlib::MigrationOptions opts;
  opts.wbs_timeout = sim::usec(1);
  const auto report = h.migrate(opts);

  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_FALSE(report.aborted);
  EXPECT_TRUE(report.wbs_timed_out);
  EXPECT_TRUE(h.traffic_flowing());
  EXPECT_EQ(h.rx->stats().content_corruptions, 0u);
}

}  // namespace
}  // namespace migr
