// Fleet orchestration: cluster model, migration scheduler, drain workflows.
//
//  * ClusterScheduler: admission limits under a request burst, abort ->
//    backoff-retry -> terminal failure after budget exhaustion, no two
//    concurrent migrations sharing a guest (same guest twice, and partnered
//    guests), rolling-rebalance planning;
//  * ClusterDrain: zero-guest drain completes immediately, the acceptance
//    drain (8 hosts, concurrency 4) is deterministic down to the rendered
//    report, leaves no stuck QPs, and beats concurrency 1 on makespan;
//  * ClusterDrainLossy: a drain survives a seeded lossy fabric with a
//    mid-drain source partition — aborted attempts are retried to
//    completion.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/drain.hpp"
#include "fault/fault.hpp"
#include "obs/flight_recorder.hpp"

namespace migr::cluster {
namespace {

// Guests get real work: extra registered memory plus page churn, so
// migrations occupy sim time and concurrency is observable.
TrafficProfile busy_profile() {
  TrafficProfile p;
  p.send_interval = sim::usec(50);
  p.msg_bytes = 1024;
  p.extra_mem_bytes = 1 << 20;
  p.dirty_interval = sim::msec(1);
  return p;
}

/// Track the high-water mark of concurrently running migrations.
sim::EventHandle probe_max_running(ClusterModel& model, MigrationScheduler& sched,
                                   std::size_t& max_running) {
  return model.loop().schedule_every(sim::usec(20), [&] {
    max_running = std::max(max_running, sched.running());
  });
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TEST(ClusterSchedulerTest, AdmissionLimitHonoredUnderBurst) {
  ClusterConfig cfg;
  cfg.hosts = 8;
  ClusterModel model(cfg);
  for (GuestId g = 100; g < 106; ++g) {
    ASSERT_TRUE(model.add_guest(1 + (g - 100) % 2, g, busy_profile()).is_ok());
  }

  SchedulerConfig scfg;
  scfg.limits.max_concurrent_fleet = 2;
  scfg.limits.max_concurrent_per_source = 2;
  scfg.limits.max_concurrent_per_dest = 2;
  MigrationScheduler sched(model, scfg);

  std::size_t max_running = 0;
  auto probe = probe_max_running(model, sched, max_running);
  for (GuestId g = 100; g < 106; ++g) sched.submit({g, 0, 0});
  ASSERT_TRUE(sched.run_until_idle(sim::sec(60)).is_ok());
  probe.cancel();

  EXPECT_EQ(max_running, 2u);  // cap respected AND reached by the burst
  for (const auto& [id, out] : sched.outcomes()) {
    EXPECT_TRUE(out.completed) << "guest " << out.guest << ": " << out.error;
    EXPECT_NE(out.dest, 0u);
    // Satellite fix: reports carry sim-time brackets, no manual bracketing.
    EXPECT_GT(out.report.end, out.report.start);
    EXPECT_EQ(out.report.duration(), out.report.end - out.report.start);
  }
}

TEST(ClusterSchedulerTest, PerSourceLimitSerializesOneHostsMigrations) {
  ClusterConfig cfg;
  cfg.hosts = 6;
  ClusterModel model(cfg);
  for (GuestId g = 200; g < 204; ++g) {
    ASSERT_TRUE(model.add_guest(1, g, busy_profile()).is_ok());
  }

  SchedulerConfig scfg;
  scfg.limits.max_concurrent_fleet = 8;
  scfg.limits.max_concurrent_per_source = 1;
  MigrationScheduler sched(model, scfg);

  std::size_t max_running = 0;
  auto probe = probe_max_running(model, sched, max_running);
  for (GuestId g = 200; g < 204; ++g) sched.submit({g, 0, 0});
  ASSERT_TRUE(sched.run_until_idle(sim::sec(60)).is_ok());
  probe.cancel();
  EXPECT_EQ(max_running, 1u);
}

TEST(ClusterSchedulerTest, AbortedMigrationRetriedWithBackoffThenFailed) {
  ClusterConfig cfg;
  cfg.hosts = 3;
  ClusterModel model(cfg);
  ASSERT_TRUE(model.add_guest(1, 10).is_ok());  // idle guest: fast attempts

  SchedulerConfig scfg;
  scfg.migration.transfer_timeout = sim::msec(5);
  scfg.migration.max_transfer_retries = 1;
  scfg.max_retries = 2;
  scfg.retry_backoff = sim::msec(2);
  MigrationScheduler sched(model, scfg);

  // The pinned destination never answers: every attempt aborts.
  model.fabric().set_partitioned(3, true);

  MigrationOutcome final_out;
  bool terminal = false;
  sched.submit({10, 3, 0}, [&](const MigrationOutcome& out) {
    final_out = out;
    terminal = true;
  });
  ASSERT_TRUE(sched.run_until_idle(sim::sec(60)).is_ok());
  ASSERT_TRUE(terminal);

  EXPECT_TRUE(final_out.failed);
  EXPECT_FALSE(final_out.completed);
  EXPECT_EQ(final_out.attempts, 3);  // 1 + max_retries re-submissions
  EXPECT_TRUE(final_out.report.aborted);
  EXPECT_TRUE(final_out.report.source_resumed);
  // Each attempt pays >= 2 transfer-attempt deadlines, plus the scheduler's
  // doubling backoff (2 ms + 4 ms) between attempts.
  EXPECT_GE(final_out.finished_at - final_out.started_at,
            3 * 2 * sim::msec(5) + sim::msec(2) + sim::msec(4));
  // Rollback held: the guest still lives on its source, nothing stuck.
  EXPECT_EQ(model.host_of(10), 1u);
  EXPECT_EQ(model.audit_stuck_qps(sim::msec(1)), 0u);
}

TEST(ClusterSchedulerTest, ConcurrentMigrationsNeverShareGuest) {
  ClusterConfig cfg;
  cfg.hosts = 4;
  ClusterModel model(cfg);
  ASSERT_TRUE(model.add_guest(1, 10, busy_profile()).is_ok());

  MigrationScheduler sched(model, {});
  std::size_t max_running = 0;
  auto probe = probe_max_running(model, sched, max_running);
  const RequestId first = sched.submit({10, 2, 0});
  const RequestId second = sched.submit({10, 3, 0});
  ASSERT_TRUE(sched.run_until_idle(sim::sec(60)).is_ok());
  probe.cancel();

  EXPECT_EQ(max_running, 1u);  // the second move waited for the first
  EXPECT_TRUE(sched.outcome(first)->completed);
  EXPECT_TRUE(sched.outcome(second)->completed);
  EXPECT_EQ(model.host_of(10), 3u);  // moves applied in submission order
}

TEST(ClusterSchedulerTest, PartneredGuestsNeverMigrateConcurrently) {
  ClusterConfig cfg;
  cfg.hosts = 6;
  ClusterModel model(cfg);
  ASSERT_TRUE(model.add_guest(1, 10, busy_profile()).is_ok());
  ASSERT_TRUE(model.add_guest(2, 20, busy_profile()).is_ok());
  ASSERT_TRUE(model.connect_guests(10, 20).is_ok());
  model.run_for(sim::msec(2));  // traffic flowing

  MigrationScheduler sched(model, {});
  std::size_t max_running = 0;
  auto probe = probe_max_running(model, sched, max_running);
  sched.submit({10, 3, 0});
  sched.submit({20, 4, 0});
  ASSERT_TRUE(sched.run_until_idle(sim::sec(60)).is_ok());
  probe.cancel();

  EXPECT_EQ(max_running, 1u);  // partner conflict serialized them
  for (const auto& [id, out] : sched.outcomes()) {
    EXPECT_TRUE(out.completed) << out.error;
  }
  EXPECT_EQ(model.host_of(10), 3u);
  EXPECT_EQ(model.host_of(20), 4u);
  EXPECT_EQ(model.audit_stuck_qps(sim::msec(1)), 0u);
}

TEST(ClusterSchedulerTest, RebalancePlanLevelsGuestCounts) {
  ClusterConfig cfg;
  cfg.hosts = 4;
  ClusterModel model(cfg);
  for (GuestId g = 300; g < 304; ++g) ASSERT_TRUE(model.add_guest(1, g).is_ok());

  MigrationScheduler sched(model, {});
  const auto plan = sched.plan_rebalance(10);
  ASSERT_EQ(plan.size(), 3u);  // 4/0/0/0 -> 1/1/1/1

  sched.submit_rebalance(10);
  ASSERT_TRUE(sched.run_until_idle(sim::sec(60)).is_ok());
  for (net::HostId h = 1; h <= 4; ++h) EXPECT_EQ(model.guest_count(h), 1u) << "host " << h;
}

// ---------------------------------------------------------------------------
// Drain workflows
// ---------------------------------------------------------------------------

TEST(ClusterDrainTest, EmptyHostDrainCompletesImmediately) {
  ClusterConfig cfg;
  cfg.hosts = 3;
  ClusterModel model(cfg);
  ASSERT_TRUE(model.add_guest(2, 50).is_ok());  // resident elsewhere

  MigrationScheduler sched(model, {});
  DrainWorkflow drain(model, sched);
  bool done = false;
  DrainReport rep;
  const sim::TimeNs before = model.loop().now();
  ASSERT_TRUE(drain.start(1, [&](const DrainReport& r) {
                     rep = r;
                     done = true;
                   })
                  .is_ok());
  // Terminal synchronously: no loop turn needed.
  ASSERT_TRUE(done);
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.migrations, 0u);
  EXPECT_EQ(rep.makespan(), 0);
  EXPECT_EQ(model.loop().now(), before);
  EXPECT_TRUE(model.draining(1));
  EXPECT_EQ(model.host_of(50), 2u);  // bystander untouched
}

// The acceptance scenario: an 8-host fleet, six busy guests on host 1 with
// partners spread over hosts 2..7.
struct DrainRun {
  std::string rendered;
  sim::DurationNs makespan = 0;
  std::size_t stuck_qps = 0;
  bool all_completed = false;
  std::uint64_t retries = 0;
};

DrainRun run_acceptance_drain(std::uint32_t concurrency, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.hosts = 8;
  cfg.seed = seed;
  ClusterModel model(cfg);
  for (GuestId g = 0; g < 6; ++g) {
    EXPECT_TRUE(model.add_guest(1, 100 + g, busy_profile()).is_ok());
    EXPECT_TRUE(model.add_guest(2 + g, 200 + g, busy_profile()).is_ok());
    EXPECT_TRUE(model.connect_guests(100 + g, 200 + g).is_ok());
  }
  model.run_for(sim::msec(5));  // steady-state traffic before the drain

  SchedulerConfig scfg;
  scfg.limits.max_concurrent_fleet = concurrency;
  scfg.limits.max_concurrent_per_source = concurrency;
  scfg.limits.max_concurrent_per_dest = concurrency;
  MigrationScheduler sched(model, scfg);
  DrainWorkflow drain(model, sched);
  const DrainReport rep = drain.run(1);

  DrainRun out;
  out.rendered = format_drain_report(rep);
  out.makespan = rep.makespan();
  out.stuck_qps = model.audit_stuck_qps(sim::msec(10));
  out.all_completed = rep.ok && rep.completed == rep.migrations;
  out.retries = rep.retries;
  return out;
}

TEST(ClusterDrainTest, EightHostDrainIsDeterministicAndScalesWithConcurrency) {
  const DrainRun c4a = run_acceptance_drain(4, 7);
  const DrainRun c4b = run_acceptance_drain(4, 7);
  // Byte-identical fleet reports for identical (plan, seed).
  EXPECT_EQ(c4a.rendered, c4b.rendered);

  // Every migration completed (or was abort-retried to completion)...
  EXPECT_TRUE(c4a.all_completed) << c4a.rendered;
  // ...with no QP left stuck anywhere in the fleet.
  EXPECT_EQ(c4a.stuck_qps, 0u);

  const DrainRun c1 = run_acceptance_drain(1, 7);
  EXPECT_TRUE(c1.all_completed) << c1.rendered;
  EXPECT_LT(c4a.makespan, c1.makespan);  // strictly better at concurrency 4
}

TEST(ClusterDrainLossyTest, DrainSurvivesLossAndMidDrainPartition) {
  ClusterConfig cfg;
  cfg.hosts = 6;
  cfg.seed = 11;
  ClusterModel model(cfg);
  for (GuestId g = 0; g < 3; ++g) {
    ASSERT_TRUE(model.add_guest(1, 100 + g, busy_profile()).is_ok());
    ASSERT_TRUE(model.add_guest(2 + g, 200 + g, busy_profile()).is_ok());
    ASSERT_TRUE(model.connect_guests(100 + g, 200 + g).is_ok());
  }
  model.run_for(sim::msec(2));

  // Lossy data plane for the whole run + the drained host cut off for a
  // window mid-drain: in-flight transfers time out, migrations abort and
  // roll back, and the scheduler's backoff retries land after the heal.
  fault::ScenarioRunner scenario(model.loop(), model.fabric());
  fault::FaultPlan plan;
  plan.baseline(0.02).partition(model.loop().now() + sim::msec(1), sim::msec(12), 1);
  scenario.run(plan);

  SchedulerConfig scfg;
  scfg.limits.max_concurrent_fleet = 2;
  scfg.limits.max_concurrent_per_source = 2;
  // No controller-level transfer retries: a timed-out transfer aborts the
  // migration immediately, putting recovery entirely in the scheduler's
  // backoff-retry path (the subject under test).
  scfg.migration.transfer_timeout = sim::msec(2);
  scfg.migration.max_transfer_retries = 0;
  scfg.migration.wbs_timeout = sim::msec(50);
  scfg.max_retries = 5;
  scfg.retry_backoff = sim::msec(4);
  MigrationScheduler sched(model, scfg);
  DrainWorkflow drain(model, sched);
  const DrainReport rep = drain.run(1);

  EXPECT_TRUE(rep.ok) << format_drain_report(rep);
  EXPECT_EQ(rep.completed, rep.migrations);
  // The partition window forced at least one abort-and-retry.
  EXPECT_GE(rep.retries, 1u);
  EXPECT_EQ(model.audit_stuck_qps(sim::msec(50)), 0u);
  for (GuestId g = 0; g < 3; ++g) EXPECT_NE(model.host_of(100 + g), 1u);

  // Blackout-anatomy invariant under faults too: the most recent attempt's
  // waterfall sums exactly to its blackout on every terminal outcome,
  // completed or aborted (an abort before the freeze has both at zero).
  for (const MigrationOutcome& o : rep.outcomes) {
    EXPECT_EQ(o.report.waterfall_total(), o.report.service_blackout())
        << "guest " << o.guest << ": " << o.report.waterfall_json();
  }
}

// Acceptance: in the deterministic 8-host drain, every migration's emitted
// phase durations sum EXACTLY to the blackout the report claims, and the
// slices tile [freeze_at, resume_at] without gaps.
TEST(ClusterDrainTest, WaterfallDurationsSumExactlyToBlackout) {
  ClusterConfig cfg;
  cfg.hosts = 8;
  cfg.seed = 7;
  ClusterModel model(cfg);
  for (GuestId g = 0; g < 6; ++g) {
    ASSERT_TRUE(model.add_guest(1, 100 + g, busy_profile()).is_ok());
    ASSERT_TRUE(model.add_guest(2 + g, 200 + g, busy_profile()).is_ok());
    ASSERT_TRUE(model.connect_guests(100 + g, 200 + g).is_ok());
  }
  model.run_for(sim::msec(5));

  SchedulerConfig scfg;
  scfg.limits.max_concurrent_fleet = 4;
  scfg.limits.max_concurrent_per_source = 4;
  scfg.limits.max_concurrent_per_dest = 4;
  MigrationScheduler sched(model, scfg);
  DrainWorkflow drain(model, sched);
  const DrainReport rep = drain.run(1);
  ASSERT_TRUE(rep.ok) << format_drain_report(rep);
  ASSERT_EQ(rep.outcomes.size(), 6u);

  for (const MigrationOutcome& o : rep.outcomes) {
    const migrlib::MigrationReport& r = o.report;
    ASSERT_FALSE(r.waterfall.empty()) << "guest " << o.guest;
    // The exact-sum acceptance check.
    EXPECT_EQ(r.waterfall_total(), r.service_blackout())
        << "guest " << o.guest << ": " << r.waterfall_json();
    // Gap-free tiling of the blackout window.
    EXPECT_EQ(r.waterfall.front().start, r.freeze_at);
    sim::TimeNs cursor = r.freeze_at;
    for (const migrlib::PhaseSlice& s : r.waterfall) {
      EXPECT_EQ(s.start, cursor) << "guest " << o.guest << " slice " << s.name;
      EXPECT_GE(s.dur, 0) << "guest " << o.guest << " slice " << s.name;
      cursor = s.start + s.dur;
    }
    EXPECT_EQ(cursor, r.resume_at) << "guest " << o.guest;
    // And the summary fields agree with the attribution.
    EXPECT_EQ(r.waterfall_total(), r.blackout_components()) << "guest " << o.guest;
  }

  // The fleet rollup covers the five real phases plus the thaw marker, and
  // its totals equal the slice-wise sums.
  ASSERT_FALSE(rep.phase_rollup.empty());
  sim::DurationNs rollup_total = 0;
  std::uint64_t worst_total = 0;
  for (const PhaseAttribution& a : rep.phase_rollup) {
    rollup_total += a.total;
    worst_total += a.worst_count;
  }
  sim::DurationNs blackout_total = 0;
  for (const MigrationOutcome& o : rep.outcomes) blackout_total += o.report.service_blackout();
  EXPECT_EQ(rollup_total, blackout_total);
  EXPECT_EQ(worst_total, rep.outcomes.size());  // one dominant phase per migration
}

// Acceptance: a forced abort under loss leaves a flight-recorder dump with
// the offending traffic's last-window packets (QPNs and all).
TEST(ClusterDrainLossyTest, ForcedAbortUnderLossDumpsFlightRecorder) {
  auto& rec = obs::FlightRecorder::global();
  rec.clear();
  rec.set_enabled(true);

  ClusterConfig cfg;
  cfg.hosts = 4;
  cfg.seed = 5;
  ClusterModel model(cfg);
  ASSERT_TRUE(model.add_guest(1, 100, busy_profile()).is_ok());
  ASSERT_TRUE(model.add_guest(2, 200, busy_profile()).is_ok());
  ASSERT_TRUE(model.connect_guests(100, 200).is_ok());
  model.run_for(sim::msec(2));

  fault::ScenarioRunner scenario(model.loop(), model.fabric());
  fault::FaultPlan plan;
  plan.baseline(0.02);
  scenario.run(plan);
  // The pinned destination never answers: the transfer deadline trips and
  // the migration aborts.
  model.fabric().set_partitioned(3, true);

  SchedulerConfig scfg;
  scfg.migration.transfer_timeout = sim::msec(2);
  scfg.migration.max_transfer_retries = 0;
  scfg.max_retries = 0;
  MigrationScheduler sched(model, scfg);

  MigrationOutcome out;
  bool terminal = false;
  sched.submit({100, 3, 0}, [&](const MigrationOutcome& o) {
    out = o;
    terminal = true;
  });
  ASSERT_TRUE(sched.run_until_idle(sim::sec(60)).is_ok());
  ASSERT_TRUE(terminal);
  ASSERT_TRUE(out.report.aborted) << out.error;

  EXPECT_GE(rec.dumps_triggered(), 1u);
  const std::string& dump = rec.last_dump_json();
  EXPECT_NE(dump.find("\"reason\":\"migration_abort\""), std::string::npos) << dump;
  // The capture window holds real wire traffic from the guest's host,
  // decoded down to QPN/PSN.
  EXPECT_NE(dump.find("\"src\":1"), std::string::npos);
  EXPECT_NE(dump.find("\"qpn\":"), std::string::npos);
  EXPECT_NE(dump.find("\"psn\":"), std::string::npos);

  rec.set_enabled(false);
  rec.clear();
}

}  // namespace
}  // namespace migr::cluster
