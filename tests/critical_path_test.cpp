// Blackout critical-path attribution (DESIGN.md §16).
//
//  * CpRecorder/resolve unit tests: the tiling invariant (sum of edge
//    durations == window length, gap-free edge walk) on clean, overlapping,
//    gapped, clamped, and empty interval sets; slack fill; coalescing;
//    dominant-edge selection;
//  * end-to-end: a real migration with critical_path on resolves a valid
//    attribution whose total equals service_blackout() exactly — on a clean
//    pre-copy run, a post-copy run, an aborted run (partitioned
//    destination), and an FT failover (total == failover_blackout());
//  * under ctrl-plane loss the retry machinery shows up as chunk_retry
//    edges, and with a pre-synced (cheap) restore they dominate.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/msg_node.hpp"
#include "apps/perftest.hpp"
#include "fault/fault.hpp"
#include "ft/ft.hpp"
#include "migr/migration.hpp"
#include "obs/critical_path.hpp"
#include "rnic/world.hpp"

namespace migr {
namespace {

using obs::CpRecorder;
using obs::CriticalPath;
using obs::EdgeClass;

// ---------------------------------------------------------------------------
// Resolve unit tests
// ---------------------------------------------------------------------------

// Every resolved path must tile its window: edges start at window_start,
// each edge begins where the previous ended, the last ends at window_end,
// and the by_class totals are a lossless decomposition of total().
void expect_tiles(const CriticalPath& cp) {
  ASSERT_TRUE(cp.valid);
  ASSERT_FALSE(cp.edges.empty());
  EXPECT_EQ(cp.edges.front().start, cp.window_start);
  std::int64_t cursor = cp.window_start;
  for (const auto& e : cp.edges) {
    EXPECT_EQ(e.start, cursor) << "gap before edge " << obs::edge_class_name(e.cls);
    EXPECT_GT(e.dur(), 0);
    cursor = e.end;
  }
  EXPECT_EQ(cursor, cp.window_end);
  std::int64_t by_class_sum = 0;
  for (std::size_t c = 0; c < obs::kEdgeClassCount; ++c) by_class_sum += cp.by_class[c];
  EXPECT_EQ(by_class_sum, cp.total());
}

TEST(CriticalPathResolve, EmptyOrInvertedWindowIsInvalid) {
  CpRecorder rec;
  rec.set_enabled(true);
  rec.add(0, 10, EdgeClass::ckpt_dump);
  EXPECT_FALSE(rec.resolve(100, 100).valid);
  EXPECT_FALSE(rec.resolve(100, 50).valid);
}

TEST(CriticalPathResolve, DisabledRecorderIgnoresAddAndResolvesToSlack) {
  CpRecorder rec;  // never enabled
  rec.add(0, 100, EdgeClass::ckpt_dump);
  EXPECT_TRUE(rec.intervals().empty());
  const CriticalPath cp = rec.resolve(0, 100);
  expect_tiles(cp);
  ASSERT_EQ(cp.edges.size(), 1u);
  EXPECT_EQ(cp.edges[0].cls, EdgeClass::slack);
  EXPECT_EQ(cp.by_class[static_cast<std::size_t>(EdgeClass::slack)], 100);
  EXPECT_EQ(cp.dominant(), EdgeClass::slack);  // nothing else recorded
}

TEST(CriticalPathResolve, RejectsEmptyIntervals) {
  CpRecorder rec;
  rec.set_enabled(true);
  rec.add(50, 50, EdgeClass::ckpt_dump);  // zero length
  rec.add(60, 40, EdgeClass::ckpt_dump);  // inverted
  EXPECT_TRUE(rec.intervals().empty());
}

TEST(CriticalPathResolve, SequentialIntervalsTileExactly) {
  CpRecorder rec;
  rec.set_enabled(true);
  rec.add(0, 40, EdgeClass::ckpt_dump, "dump");
  rec.add(40, 70, EdgeClass::chunk_wire, "image");
  rec.add(70, 100, EdgeClass::restore_apply, "restore");
  const CriticalPath cp = rec.resolve(0, 100);
  expect_tiles(cp);
  ASSERT_EQ(cp.edges.size(), 3u);
  EXPECT_EQ(cp.edges[0].cls, EdgeClass::ckpt_dump);
  EXPECT_EQ(cp.edges[1].cls, EdgeClass::chunk_wire);
  EXPECT_EQ(cp.edges[2].cls, EdgeClass::restore_apply);
  EXPECT_EQ(cp.by_class[static_cast<std::size_t>(EdgeClass::ckpt_dump)], 40);
  EXPECT_EQ(cp.by_class[static_cast<std::size_t>(EdgeClass::slack)], 0);
  EXPECT_EQ(cp.dominant(), EdgeClass::ckpt_dump);  // largest non-slack
}

TEST(CriticalPathResolve, GapsBetweenIntervalsBecomeSlack) {
  CpRecorder rec;
  rec.set_enabled(true);
  rec.add(10, 30, EdgeClass::ckpt_dump);
  rec.add(60, 90, EdgeClass::restore_apply);
  const CriticalPath cp = rec.resolve(0, 100);
  expect_tiles(cp);
  // slack [0,10) + dump [10,30) + slack [30,60) + restore [60,90) + slack [90,100)
  EXPECT_EQ(cp.by_class[static_cast<std::size_t>(EdgeClass::slack)], 10 + 30 + 10);
  EXPECT_EQ(cp.by_class[static_cast<std::size_t>(EdgeClass::ckpt_dump)], 20);
  EXPECT_EQ(cp.by_class[static_cast<std::size_t>(EdgeClass::restore_apply)], 30);
  EXPECT_EQ(cp.dominant(), EdgeClass::restore_apply);
}

TEST(CriticalPathResolve, OverlappingIntervalsNeverDoubleCount) {
  CpRecorder rec;
  rec.set_enabled(true);
  // Two overlapping waits: the backward walk picks whichever covers the
  // cursor; the overlap region is attributed once, not twice.
  rec.add(0, 60, EdgeClass::chunk_wire);
  rec.add(40, 100, EdgeClass::chunk_retry);
  const CriticalPath cp = rec.resolve(0, 100);
  expect_tiles(cp);
  EXPECT_EQ(cp.total(), 100);
  EXPECT_EQ(cp.by_class[static_cast<std::size_t>(EdgeClass::slack)], 0);
  EXPECT_EQ(cp.by_class[static_cast<std::size_t>(EdgeClass::chunk_wire)] +
                cp.by_class[static_cast<std::size_t>(EdgeClass::chunk_retry)],
            100);
}

TEST(CriticalPathResolve, IntervalsOutsideTheWindowAreClamped) {
  CpRecorder rec;
  rec.set_enabled(true);
  rec.add(-50, 20, EdgeClass::ckpt_dump);     // straddles window start
  rec.add(80, 500, EdgeClass::restore_apply); // straddles window end
  rec.add(200, 300, EdgeClass::chunk_wire);   // entirely outside
  const CriticalPath cp = rec.resolve(0, 100);
  expect_tiles(cp);
  EXPECT_EQ(cp.by_class[static_cast<std::size_t>(EdgeClass::ckpt_dump)], 20);
  EXPECT_EQ(cp.by_class[static_cast<std::size_t>(EdgeClass::restore_apply)], 20);
  EXPECT_EQ(cp.by_class[static_cast<std::size_t>(EdgeClass::chunk_wire)], 0);
  EXPECT_EQ(cp.by_class[static_cast<std::size_t>(EdgeClass::slack)], 60);
}

TEST(CriticalPathResolve, AdjacentSameClassSameLabelEdgesCoalesce) {
  CpRecorder rec;
  rec.set_enabled(true);
  rec.add(0, 30, EdgeClass::chunk_wire, "image");
  rec.add(30, 60, EdgeClass::chunk_wire, "image");
  rec.add(60, 100, EdgeClass::chunk_wire, "other");
  const CriticalPath cp = rec.resolve(0, 100);
  expect_tiles(cp);
  ASSERT_EQ(cp.edges.size(), 2u);  // first two merged, label change splits
  EXPECT_EQ(cp.edges[0].dur(), 60);
  EXPECT_EQ(cp.edges[1].dur(), 40);
}

TEST(CriticalPathResolve, MessyOverlapsStillTile) {
  // A deliberately ugly interval soup (nested, duplicated, partial
  // overlaps, out-of-order appends): whatever the walk picks, the tiling
  // invariant must hold — that is the property CI pins on real artifacts.
  CpRecorder rec;
  rec.set_enabled(true);
  rec.add(700, 900, EdgeClass::restore_apply);
  rec.add(0, 1000, EdgeClass::wbs_wait);
  rec.add(100, 400, EdgeClass::ckpt_dump);
  rec.add(150, 350, EdgeClass::chunk_wire);
  rec.add(100, 400, EdgeClass::ckpt_dump);  // duplicate
  rec.add(380, 720, EdgeClass::chunk_retry);
  const CriticalPath cp = rec.resolve(50, 950);
  expect_tiles(cp);
  EXPECT_EQ(cp.total(), 900);
}

TEST(CriticalPathResolve, JsonCarriesSchemaFields) {
  CpRecorder rec;
  rec.set_enabled(true);
  rec.add(0, 40, EdgeClass::ckpt_dump, "dump");
  const std::string j = rec.resolve(0, 100).json();
  for (const char* needle :
       {"\"window_start_ns\":0", "\"window_end_ns\":100", "\"total_ns\":100",
        "\"dominant\":\"ckpt_dump\"", "\"by_class\"", "\"slack\":60", "\"edges\"",
        "\"label\":\"dump\""}) {
    EXPECT_NE(j.find(needle), std::string::npos) << "missing " << needle << " in " << j;
  }
}

// ---------------------------------------------------------------------------
// End-to-end: migrations attribute their whole blackout
// ---------------------------------------------------------------------------

// Three hosts: guest 1 (tx) on host 1, partner guest 2 (rx) on host 3;
// migrations move guest 1 to host 2 (same topology as fault_test.cpp).
struct CpHarness {
  rnic::World world;
  migrlib::GuestDirectory dir;
  std::vector<std::unique_ptr<migrlib::MigrRdmaRuntime>> rts;
  std::unique_ptr<apps::PerftestPeer> tx;
  std::unique_ptr<apps::PerftestPeer> rx;

  explicit CpHarness(std::uint64_t seed = 42) : world({}, seed) {
    for (net::HostId h = 1; h <= 3; ++h) {
      rts.push_back(std::make_unique<migrlib::MigrRdmaRuntime>(dir, world.add_device(h),
                                                               world.fabric()));
    }
    apps::PerftestConfig cfg;
    cfg.num_qps = 2;
    cfg.msg_size = 8192;
    cfg.queue_depth = 16;
    cfg.opcode = rnic::WrOpcode::rdma_write;
    tx = std::make_unique<apps::PerftestPeer>(*rts[0], world.add_process("tx"), 1,
                                              apps::PerftestPeer::Role::sender, cfg);
    rx = std::make_unique<apps::PerftestPeer>(*rts[2], world.add_process("rx"), 2,
                                              apps::PerftestPeer::Role::receiver, cfg);
    for (std::uint32_t i = 0; i < cfg.num_qps; ++i) {
      EXPECT_TRUE(apps::PerftestPeer::connect_pair(*tx, i, *rx, i).is_ok());
    }
    tx->start();
    rx->start();
    world.loop().run_until(world.loop().now() + sim::msec(3));
  }

  migrlib::MigrationReport migrate(migrlib::MigrationOptions opts) {
    opts.critical_path = true;
    auto& dest = world.add_process("dest");
    migrlib::MigrationController ctl(world.loop(), world.fabric(), dir, opts);
    migrlib::MigrationReport report;
    bool done = false;
    EXPECT_TRUE(ctl.start(1, 2, dest, tx.get(), [&](const migrlib::MigrationReport& r) {
                     report = r;
                     done = true;
                   })
                    .is_ok());
    const sim::TimeNs deadline = world.loop().now() + sim::sec(60);
    while (!done && world.loop().now() < deadline) {
      world.loop().run_until(world.loop().now() + sim::msec(1));
    }
    EXPECT_TRUE(done) << "migration neither completed nor aborted";
    return report;
  }
};

void expect_attributes_blackout(const migrlib::MigrationReport& rep) {
  const CriticalPath& cp = rep.critical_path;
  expect_tiles(cp);
  EXPECT_EQ(cp.window_start, rep.freeze_at);
  EXPECT_EQ(cp.window_end, rep.resume_at);
  EXPECT_EQ(cp.total(), rep.service_blackout())
      << "attribution must cover every ns of the blackout";
}

TEST(CriticalPathEndToEnd, CleanPrecopyAttributesEveryNanosecond) {
  CpHarness h;
  const auto rep = h.migrate(migrlib::MigrationOptions{});
  ASSERT_TRUE(rep.ok) << rep.error;
  expect_attributes_blackout(rep);
  // A clean stop-and-copy is dump- or restore-bound, never retry-bound.
  EXPECT_EQ(rep.critical_path.by_class[static_cast<std::size_t>(EdgeClass::chunk_retry)], 0);
  EXPECT_NE(rep.critical_path.dominant(), EdgeClass::slack);
}

TEST(CriticalPathEndToEnd, PostcopyAttributesEveryNanosecond) {
  CpHarness h;
  migrlib::MigrationOptions opts;
  opts.mode = migrlib::MigrationMode::postcopy;
  const auto rep = h.migrate(opts);
  ASSERT_TRUE(rep.ok) << rep.error;
  expect_attributes_blackout(rep);
}

TEST(CriticalPathEndToEnd, MultifdMuxAttributesEveryNanosecond) {
  CpHarness h;
  migrlib::MigrationOptions opts;
  opts.xfer_streams = 4;
  opts.xfer_stream_gbps = 25.0;
  const auto rep = h.migrate(opts);
  ASSERT_TRUE(rep.ok) << rep.error;
  expect_attributes_blackout(rep);
}

TEST(CriticalPathEndToEnd, AbortedMigrationStillTiles) {
  // A partition from t=0 aborts during pre-copy — before any blackout
  // exists. To abort *mid-blackout* the destination must vanish only once
  // the guest is suspended: discovery run first (same seed, same options,
  // no faults) to learn suspend_at, then a fresh world where the partition
  // opens exactly there. WBS quiesce times out (forced stop-and-copy),
  // freeze happens, and every final-transfer attempt blackholes until the
  // retry budget exhausts inside the blackout window.
  migrlib::MigrationOptions opts;
  opts.wbs_timeout = sim::msec(50);
  opts.transfer_timeout = sim::msec(20);
  opts.max_transfer_retries = 2;
  opts.transfer_retry_backoff = sim::msec(5);

  sim::TimeNs suspend_at = 0;
  {
    CpHarness discover;
    const auto rep = discover.migrate(opts);
    ASSERT_TRUE(rep.ok) << rep.error;
    suspend_at = rep.suspend_at;
    ASSERT_GT(suspend_at, 0);
  }

  CpHarness h;
  fault::ScenarioRunner runner(h.world.loop(), h.world.fabric());
  fault::FaultPlan plan;
  plan.partition(suspend_at, /*duration=*/sim::sec(10), /*host=*/2);
  runner.run(plan);

  const auto rep = h.migrate(opts);
  ASSERT_FALSE(rep.ok);
  ASSERT_TRUE(rep.aborted);
  expect_attributes_blackout(rep);
  EXPECT_GT(rep.critical_path.by_class[static_cast<std::size_t>(EdgeClass::chunk_retry)], 0)
      << "dead transfer attempts must be attributed to the retry loop";
}

// ---------------------------------------------------------------------------
// End-to-end: FT failover
// ---------------------------------------------------------------------------

// Minimal protect-then-kill scenario (same topology as ft_test.cpp): the
// failover blackout [killed_at, resume_at] must be fully attributed.
TEST(CriticalPathEndToEnd, FtFailoverAttributesKilledToResume) {
  rnic::World world({}, /*seed=*/42);
  migrlib::GuestDirectory dir;
  std::vector<std::unique_ptr<migrlib::MigrRdmaRuntime>> rts;
  for (net::HostId h : {1, 2, 3}) {
    rts.push_back(
        std::make_unique<migrlib::MigrRdmaRuntime>(dir, world.add_device(h), world.fabric()));
  }
  auto& primary = world.add_process("primary");
  auto& partner = world.add_process("partner");
  auto& backup = world.add_process("backup");
  apps::MsgNode a(*rts[0], primary, /*guest=*/10);
  apps::MsgNode b(*rts[2], partner, /*guest=*/20);
  ASSERT_TRUE(apps::MsgNode::connect(a, b).is_ok());
  a.start();
  b.start();
  world.loop().schedule_every(sim::usec(200), [&a] {
    common::ByteWriter w;
    w.u64(7);
    (void)a.send(20, w.data());
  });

  ft::FtOptions fo;
  fo.criu_costs.freeze = sim::usec(50);
  fo.criu_costs.dump_base = sim::usec(300);
  fo.criu_costs.final_restore_base = sim::msec(2);
  fo.epoch_interval = sim::msec(1);
  fo.heartbeat_interval = sim::msec(1);
  fo.critical_path = true;
  ft::FtController ctrl(world.loop(), world.fabric(), dir, fo);

  bool ready = false, done = false;
  ft::FtReport report;
  ASSERT_TRUE(ctrl.protect(10, /*backup_host=*/2, backup, /*app=*/nullptr, &a,
                           [&](const common::Status&) { ready = true; },
                           [&](const ft::FtReport& r) {
                             report = r;
                             done = true;
                           })
                  .is_ok());
  const sim::TimeNs pdeadline = world.loop().now() + sim::msec(100);
  while (!ready && world.loop().now() < pdeadline) {
    world.loop().run_until(world.loop().now() + sim::usec(100));
  }
  ASSERT_TRUE(ready);
  world.loop().run_until(world.loop().now() + sim::msec(10));
  ctrl.kill_primary();
  const sim::TimeNs deadline = world.loop().now() + sim::msec(200);
  while (!done && world.loop().now() < deadline) {
    world.loop().run_until(world.loop().now() + sim::usec(100));
  }
  ASSERT_TRUE(done);
  ASSERT_TRUE(report.failed_over);

  const CriticalPath& cp = report.critical_path;
  expect_tiles(cp);
  EXPECT_EQ(cp.window_start, report.killed_at);
  EXPECT_EQ(cp.window_end, report.resume_at);
  EXPECT_EQ(cp.total(), report.failover_blackout());
  // The failover chain is detection + promote (ctrl_rtt) and the restore;
  // re_arm (qp_reestablish) is instantaneous in this model configuration.
  EXPECT_GT(cp.by_class[static_cast<std::size_t>(EdgeClass::ctrl_rtt)], 0);
  EXPECT_GT(cp.by_class[static_cast<std::size_t>(EdgeClass::restore_apply)], 0);
  EXPECT_EQ(cp.dominant(), EdgeClass::ctrl_rtt);  // detection dominates here
  // And the report JSON carries the block.
  EXPECT_NE(report.json().find("\"critical_path\""), std::string::npos);
}

}  // namespace
}  // namespace migr
