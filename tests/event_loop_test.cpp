// Core event-loop semantics the rest of the simulator leans on. These pin
// down the contract of the pooled fast path: slot reuse and generation
// counters must not let a cancelled or stale handle touch a recycled slot,
// and dispatch order must stay FIFO among equal timestamps (the fabric's
// in-order delivery guarantee rides on that tie-break).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_loop.hpp"

namespace migr::sim {
namespace {

TEST(EventLoopCore, CancelBeforeFireSuppressesCallback) {
  EventLoop loop;
  int fired = 0;
  EventHandle h = loop.schedule_at(usec(10), [&] { fired++; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  loop.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(loop.empty());

  // The slot is free for reuse now; a second cancel on the stale handle must
  // not disturb whatever event recycles the slot (generation counter check).
  EventHandle h2 = loop.schedule_at(usec(20), [&] { fired++; });
  h.cancel();
  EXPECT_TRUE(h2.pending());
  loop.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopCore, PeriodicCancelFromInsideOwnCallback) {
  EventLoop loop;
  int ticks = 0;
  EventHandle h;
  h = loop.schedule_every(usec(5), [&] {
    ticks++;
    if (ticks == 3) h.cancel();
  });
  loop.run_until(usec(100));
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(loop.empty());
  // Time still advances to the deadline after the task stops re-arming.
  EXPECT_EQ(loop.now(), usec(100));
}

TEST(EventLoopCore, RunUntilAdvancesNowToDeadline) {
  EventLoop loop;
  int fired = 0;
  // One event before the deadline, one exactly at it, one after.
  loop.schedule_at(usec(3), [&] { fired++; });
  loop.schedule_at(usec(10), [&] { fired++; });
  loop.schedule_at(usec(11), [&] { fired++; });
  const std::uint64_t n = loop.run_until(usec(10));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), usec(10));
  EXPECT_EQ(loop.pending_events(), 1u);

  // An empty run still lands now() on the deadline.
  EXPECT_EQ(loop.run_until(usec(10)), 0u);
  EXPECT_EQ(loop.now(), usec(10));
}

TEST(EventLoopCore, EqualTimestampsDispatchFifo) {
  EventLoop loop;
  std::vector<int> order;
  // Mix handle-returning and fire-and-forget scheduling at one timestamp:
  // both go through the same heap and must keep submission order.
  loop.schedule_at(usec(7), [&] { order.push_back(0); });
  loop.post_at(usec(7), [&] { order.push_back(1); });
  loop.schedule_at(usec(7), [&] { order.push_back(2); });
  loop.post_at(usec(7), [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventLoopCore, ScheduleAtClampsPastTimesToNow) {
  EventLoop loop;
  std::vector<std::string> order;
  loop.schedule_at(usec(10), [&] {
    // From inside an event at t=10us, scheduling into the past or with a
    // negative delay must clamp to now — never travel backwards.
    loop.schedule_at(usec(2), [&] {
      order.push_back("past@" + std::to_string(loop.now()));
    });
    loop.schedule_in(-5, [&] {
      order.push_back("neg@" + std::to_string(loop.now()));
    });
    order.push_back("outer");
  });
  loop.run();
  const std::string now_s = std::to_string(usec(10));
  EXPECT_EQ(order, (std::vector<std::string>{"outer", "past@" + now_s, "neg@" + now_s}));
  EXPECT_EQ(loop.now(), usec(10));
}

}  // namespace
}  // namespace migr::sim
