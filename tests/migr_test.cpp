#include <gtest/gtest.h>

#include <cstring>

#include "migr/guest_lib.hpp"
#include "migr/migration.hpp"
#include "migr/plugin.hpp"
#include "migr/runtime.hpp"
#include "rnic/world.hpp"

namespace migr::migrlib {
namespace {

using common::Errc;
using rnic::Cqe;
using rnic::CqeStatus;
using rnic::RecvWr;
using rnic::SendWr;
using rnic::WrOpcode;

/// Cluster fixture: hosts 1..4, each with an RNIC and a MigrRDMA runtime.
class MigrTest : public ::testing::Test {
 protected:
  MigrTest() {
    for (net::HostId h = 1; h <= 4; ++h) {
      devices_[h] = &world_.add_device(h);
      runtimes_[h] = std::make_unique<MigrRdmaRuntime>(directory_, *devices_[h],
                                                       world_.fabric());
    }
  }

  struct App {
    proc::SimProcess* proc = nullptr;
    GuestContext* guest = nullptr;
    VHandle pd = 0, cq = 0;
  };

  App make_app(net::HostId host, GuestId id, const std::string& name) {
    App app;
    app.proc = &world_.add_process(name);
    app.guest = runtimes_[host]->create_guest(*app.proc, id).value();
    app.pd = app.guest->alloc_pd().value();
    app.cq = app.guest->create_cq(4096).value();
    return app;
  }

  struct Buf {
    std::uint64_t addr = 0;
    VMr mr;
  };

  Buf make_buf(App& app, std::uint64_t size,
               std::uint32_t access = rnic::kAccessLocalWrite | rnic::kAccessRemoteWrite |
                                      rnic::kAccessRemoteRead | rnic::kAccessRemoteAtomic) {
    Buf b;
    b.addr = app.proc->mem().mmap(size, "app_buf").value();
    b.mr = app.guest->reg_mr(app.pd, b.addr, size, access).value();
    return b;
  }

  VQpn make_qp(App& app, VHandle srq = 0) {
    GuestQpAttr attr;
    attr.vpd = app.pd;
    attr.vsend_cq = app.cq;
    attr.vrecv_cq = app.cq;
    attr.vsrq = srq;
    attr.caps = {256, 256};
    return app.guest->create_qp(attr).value();
  }

  /// Connect a<->b (both MigrRDMA guests).
  void connect(App& a, VQpn qa, App& b, VQpn qb) {
    ASSERT_TRUE(a.guest->connect_qp(qa, b.guest->id(), qb, 111, 222).is_ok());
    ASSERT_TRUE(b.guest->connect_qp(qb, a.guest->id(), qa, 222, 111).is_ok());
  }

  std::optional<Cqe> poll_one(App& app, sim::DurationNs limit = sim::msec(100)) {
    Cqe cqe;
    const sim::TimeNs deadline = world_.loop().now() + limit;
    while (world_.loop().now() < deadline) {
      if (app.guest->poll_cq(app.cq, {&cqe, 1}) == 1) return cqe;
      world_.loop().run_until(world_.loop().now() + sim::usec(20));
    }
    return std::nullopt;
  }

  void run_for(sim::DurationNs d) { world_.loop().run_until(world_.loop().now() + d); }

  void write_u64(App& app, std::uint64_t addr, std::uint64_t v) {
    ASSERT_TRUE(app.proc->mem().write(addr, {reinterpret_cast<std::uint8_t*>(&v), 8}).is_ok());
  }
  std::uint64_t read_u64(App& app, std::uint64_t addr) {
    std::uint64_t v = 0;
    EXPECT_TRUE(app.proc->mem().read(addr, {reinterpret_cast<std::uint8_t*>(&v), 8}).is_ok());
    return v;
  }

  /// Run one full migration and return the report. Rebinds `app.proc` to
  /// the destination process, the way a restored application transparently
  /// finds itself in the new container.
  MigrationReport migrate(App& app, net::HostId dest, MigratableApp* mapp = nullptr,
                          MigrationOptions opts = {}) {
    auto& dest_proc = world_.add_process("dest-proc");
    MigrationController ctl(world_.loop(), world_.fabric(), directory_, opts);
    MigrationReport out;
    bool done = false;
    EXPECT_TRUE(ctl.start(app.guest->id(), dest, dest_proc, mapp,
                          [&](const MigrationReport& r) {
                            out = r;
                            done = true;
                          })
                    .is_ok());
    const sim::TimeNs deadline = world_.loop().now() + sim::sec(30);
    while (!done && world_.loop().now() < deadline) {
      world_.loop().run_until(world_.loop().now() + sim::msec(1));
    }
    EXPECT_TRUE(done) << "migration did not finish";
    if (done && out.ok) app.proc = &dest_proc;
    return out;
  }

  rnic::World world_;
  GuestDirectory directory_;
  std::unordered_map<net::HostId, rnic::Device*> devices_;
  std::unordered_map<net::HostId, std::unique_ptr<MigrRdmaRuntime>> runtimes_;
};

// ---------------------------------------------------------------------------
// Virtualization layer
// ---------------------------------------------------------------------------

TEST_F(MigrTest, VirtualKeysAreDense) {
  App a = make_app(1, 10, "a");
  Buf b1 = make_buf(a, 4096);
  Buf b2 = make_buf(a, 4096);
  Buf b3 = make_buf(a, 4096);
  EXPECT_EQ(b1.mr.vlkey, 1u);
  EXPECT_EQ(b2.mr.vlkey, 2u);
  EXPECT_EQ(b3.mr.vlkey, 3u);
  EXPECT_EQ(b1.mr.vrkey, 1u);
  EXPECT_EQ(b2.mr.vrkey, 2u);
}

TEST_F(MigrTest, VirtualQpnEqualsPhysicalAtCreation) {
  App a = make_app(1, 10, "a");
  VQpn vqpn = make_qp(a);
  EXPECT_EQ(a.guest->physical_qpn(vqpn).value(), vqpn);
}

TEST_F(MigrTest, SendRecvThroughVirtualizationLayer) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  Buf sbuf = make_buf(a, 4096);
  Buf rbuf = make_buf(b, 4096);
  write_u64(a, sbuf.addr, 0xFEEDBEEF);

  RecvWr rwr;
  rwr.wr_id = 7;
  rwr.sge = {{rbuf.addr, 4096, rbuf.mr.vlkey}};
  ASSERT_TRUE(b.guest->post_recv(qb, rwr).is_ok());

  SendWr swr;
  swr.wr_id = 8;
  swr.opcode = WrOpcode::send;
  swr.sge = {{sbuf.addr, 64, sbuf.mr.vlkey}};
  ASSERT_TRUE(a.guest->post_send(qa, swr).is_ok());

  auto scqe = poll_one(a);
  ASSERT_TRUE(scqe.has_value());
  EXPECT_EQ(scqe->wr_id, 8u);
  EXPECT_EQ(scqe->qpn, qa);  // virtual QPN in the CQE
  auto rcqe = poll_one(b);
  ASSERT_TRUE(rcqe.has_value());
  EXPECT_EQ(rcqe->wr_id, 7u);
  EXPECT_EQ(rcqe->qpn, qb);
  EXPECT_EQ(read_u64(b, rbuf.addr), 0xFEEDBEEFu);
}

TEST_F(MigrTest, OneSidedWriteWithRkeyFetchAndCache) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  Buf src = make_buf(a, 4096);
  Buf dst = make_buf(b, 4096);
  write_u64(a, src.addr, 42);

  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = dst.addr;
  wr.rkey = dst.mr.vrkey;  // the VIRTUAL rkey, as exchanged out of band
  wr.sge = {{src.addr, 8, src.mr.vlkey}};
  const auto fetches_before = runtimes_[1]->stats().rkey_fetches;
  ASSERT_TRUE(a.guest->post_send(qa, wr).is_ok());
  ASSERT_TRUE(poll_one(a).has_value());
  EXPECT_EQ(read_u64(b, dst.addr), 42u);
  EXPECT_EQ(runtimes_[1]->stats().rkey_fetches, fetches_before + 1);

  // Second write: cache hit, no fetch.
  write_u64(a, src.addr, 43);
  ASSERT_TRUE(a.guest->post_send(qa, wr).is_ok());
  ASSERT_TRUE(poll_one(a).has_value());
  EXPECT_EQ(runtimes_[1]->stats().rkey_fetches, fetches_before + 1);
  EXPECT_GT(runtimes_[1]->stats().rkey_cache_hits, 0u);
  EXPECT_EQ(read_u64(b, dst.addr), 43u);
}

TEST_F(MigrTest, ReadAndAtomicThroughVirtualization) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  Buf local = make_buf(a, 4096);
  Buf remote = make_buf(b, 4096);
  write_u64(b, remote.addr, 777);

  SendWr rd;
  rd.opcode = WrOpcode::rdma_read;
  rd.remote_addr = remote.addr;
  rd.rkey = remote.mr.vrkey;
  rd.sge = {{local.addr, 8, local.mr.vlkey}};
  ASSERT_TRUE(a.guest->post_send(qa, rd).is_ok());
  ASSERT_TRUE(poll_one(a).has_value());
  EXPECT_EQ(read_u64(a, local.addr), 777u);

  SendWr faa;
  faa.opcode = WrOpcode::atomic_fetch_and_add;
  faa.remote_addr = remote.addr;
  faa.rkey = remote.mr.vrkey;
  faa.compare_add = 3;
  faa.sge = {{local.addr, 8, local.mr.vlkey}};
  ASSERT_TRUE(a.guest->post_send(qa, faa).is_ok());
  ASSERT_TRUE(poll_one(a).has_value());
  EXPECT_EQ(read_u64(b, remote.addr), 780u);
}

TEST_F(MigrTest, HybridRawPeerExcludesVirtualization) {
  // Peer uses the plain rnic verbs, no MigrRDMA library.
  App a = make_app(1, 10, "a");
  auto& raw_proc = world_.add_process("raw");
  rnic::Context* raw_ctx = devices_[3]->open(raw_proc).value();
  auto raw_pd = raw_ctx->alloc_pd().value();
  auto raw_cq = raw_ctx->create_cq(256).value();
  auto raw_qpn = raw_ctx->create_qp({rnic::QpType::rc, raw_pd, raw_cq, raw_cq, 0, {}}).value();
  auto raw_va = raw_proc.mem().mmap(4096, "raw_buf").value();
  auto raw_mr = raw_ctx->reg_mr(raw_pd, raw_va, 4096,
                                rnic::kAccessLocalWrite | rnic::kAccessRemoteWrite)
                    .value();

  VQpn qa = make_qp(a);
  // Negotiation: peer does not support MigrRDMA.
  EXPECT_FALSE(runtimes_[1]->peer_supports_migrrdma(999));
  ASSERT_TRUE(a.guest->connect_qp_raw(qa, 3, raw_qpn, 11, 22).is_ok());
  ASSERT_TRUE(raw_ctx->modify_qp_init(raw_qpn).is_ok());
  ASSERT_TRUE(raw_ctx->modify_qp_rtr(raw_qpn, 1, a.guest->physical_qpn(qa).value(), 11).is_ok());
  ASSERT_TRUE(raw_ctx->modify_qp_rts(raw_qpn, 22).is_ok());

  Buf src = make_buf(a, 4096);
  write_u64(a, src.addr, 0xAB);
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = raw_va;
  wr.rkey = raw_mr.rkey;  // the RAW physical rkey — no translation
  wr.sge = {{src.addr, 8, src.mr.vlkey}};
  ASSERT_TRUE(a.guest->post_send(qa, wr).is_ok());
  ASSERT_TRUE(poll_one(a).has_value());
  std::uint64_t v = 0;
  ASSERT_TRUE(raw_proc.mem().read(raw_va, {reinterpret_cast<std::uint8_t*>(&v), 8}).is_ok());
  EXPECT_EQ(v, 0xABu);
}

// ---------------------------------------------------------------------------
// Suspension & wait-before-stop
// ---------------------------------------------------------------------------

TEST_F(MigrTest, SuspendInterceptsPostsAndWbsDrains) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  Buf src = make_buf(a, 1 << 20);
  Buf dst = make_buf(b, 1 << 20);

  // Fill the pipe with large writes, then suspend immediately.
  for (int i = 0; i < 8; ++i) {
    SendWr wr;
    wr.wr_id = 100 + static_cast<std::uint64_t>(i);
    wr.opcode = WrOpcode::rdma_write;
    wr.remote_addr = dst.addr;
    wr.rkey = dst.mr.vrkey;
    wr.sge = {{src.addr, 256 * 1024, src.mr.vlkey}};
    ASSERT_TRUE(a.guest->post_send(qa, wr).is_ok());
  }
  bool a_done = false, b_done = false;
  a.guest->set_wbs_done_callback([&] { a_done = true; });
  b.guest->set_wbs_done_callback([&] { b_done = true; });
  a.guest->suspend(SuspendScope{true, 0});
  b.guest->suspend(SuspendScope{false, 10});
  EXPECT_TRUE(a.guest->qp_suspended(qa));
  EXPECT_TRUE(b.guest->qp_suspended(qb));

  // Posts during suspension are intercepted: accepted but not on the wire.
  SendWr late;
  late.wr_id = 999;
  late.opcode = WrOpcode::rdma_write;
  late.remote_addr = dst.addr;
  late.rkey = dst.mr.vrkey;
  late.sge = {{src.addr, 64, src.mr.vlkey}};
  ASSERT_TRUE(a.guest->post_send(qa, late).is_ok());

  // WBS completes once the 8 big writes are acked (2 MiB at 100 Gbps
  // ≈ 170 us); the intercepted one must NOT hold it up.
  run_for(sim::msec(10));
  EXPECT_TRUE(a_done);
  EXPECT_TRUE(b_done);
  EXPECT_TRUE(a.guest->wbs_done());

  // The 8 completions were parked in the fake CQ by the WBS thread and the
  // application still consumes them, translated, in order.
  for (int i = 0; i < 8; ++i) {
    auto cqe = poll_one(a);
    ASSERT_TRUE(cqe.has_value());
    EXPECT_EQ(cqe->wr_id, 100u + static_cast<std::uint64_t>(i));
    EXPECT_EQ(cqe->qpn, qa);
  }
  // No completion for the intercepted WR yet.
  Cqe none;
  EXPECT_EQ(a.guest->poll_cq(a.cq, {&none, 1}), 0);
}

TEST_F(MigrTest, WbsWaitsForPeerSends) {
  // Peer posted sends; our side must not finish WBS until its RECVs match
  // the peer's n_sent.
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  Buf sbuf = make_buf(b, 4096);
  Buf rbuf = make_buf(a, 4096);

  // b sends 2 messages; a has only 1 RECV posted -> one message stalls in
  // RNR retry until the second RECV appears.
  RecvWr rwr;
  rwr.sge = {{rbuf.addr, 1024, rbuf.mr.vlkey}};
  ASSERT_TRUE(a.guest->post_recv(qa, rwr).is_ok());
  for (int i = 0; i < 2; ++i) {
    SendWr wr;
    wr.opcode = WrOpcode::send;
    wr.sge = {{sbuf.addr, 64, sbuf.mr.vlkey}};
    ASSERT_TRUE(b.guest->post_send(qb, wr).is_ok());
  }
  run_for(sim::usec(200));

  bool a_done = false;
  a.guest->set_wbs_done_callback([&] { a_done = true; });
  a.guest->suspend(SuspendScope{true, 0});
  b.guest->suspend(SuspendScope{false, 10});
  run_for(sim::msec(2));
  EXPECT_FALSE(a_done) << "WBS must wait for the peer's second send";

  // Post the missing RECV (intercepted, but the NIC-level retry needs a
  // real RQ entry — the intercepted RECV is replayed only at restore; the
  // peer's send can only complete after migration replays it). For the
  // purpose of WBS, this is the buggy-network case: resolve via timeout.
  a.guest->force_wbs_timeout();
  b.guest->force_wbs_timeout();
  EXPECT_TRUE(a.guest->wbs_done());
}

// ---------------------------------------------------------------------------
// Dump / image round trip
// ---------------------------------------------------------------------------

TEST_F(MigrTest, RdmaImageRoundTrip) {
  App a = make_app(1, 10, "a");
  Buf b1 = make_buf(a, 8192);
  VHandle ch = a.guest->create_comp_channel().value();
  VHandle evcq = a.guest->create_cq(128, ch).value();
  (void)evcq;
  VHandle srq = a.guest->create_srq(a.pd, 128).value();
  VQpn q1 = make_qp(a);
  VQpn q2 = make_qp(a, srq);
  (void)q2;
  auto dm = a.guest->alloc_dm(8192).value();
  (void)dm;

  RdmaImage img = a.guest->dump(false);
  auto parsed = RdmaImage::parse(img.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->pds.size(), 1u);
  EXPECT_EQ(parsed->cqs.size(), 2u);
  EXPECT_EQ(parsed->channels.size(), 1u);
  EXPECT_EQ(parsed->srqs.size(), 1u);
  EXPECT_EQ(parsed->mrs.size(), 1u);
  EXPECT_EQ(parsed->dms.size(), 1u);
  EXPECT_EQ(parsed->qps.size(), 2u);
  EXPECT_EQ(parsed->mrs[0].vlkey, b1.mr.vlkey);
  EXPECT_EQ(parsed->qps.size(), 2u);
  const bool has_q1 = parsed->qps[0].vqpn == q1 || parsed->qps[1].vqpn == q1;
  EXPECT_TRUE(has_q1);
}

TEST_F(MigrTest, FinalDumpIsDiff) {
  App a = make_app(1, 10, "a");
  make_buf(a, 4096);
  RdmaImage pre = a.guest->dump(false);
  EXPECT_EQ(pre.mrs.size(), 1u);
  // Register another MR after the pre-dump.
  make_buf(a, 4096);
  RdmaImage diff = a.guest->dump(true);
  EXPECT_TRUE(diff.final);
  EXPECT_EQ(diff.mrs.size(), 1u);  // only the new MR
  EXPECT_TRUE(diff.pds.empty());
}

TEST_F(MigrTest, PinnedVmaStartsFindMrAndShadowVmas) {
  App a = make_app(1, 10, "a");
  Buf b = make_buf(a, 8192);
  make_qp(a);
  RdmaImage rdma = a.guest->dump(false);
  criu::Checkpointer ckpt(*a.proc);
  auto d = ckpt.pre_dump();
  auto pinned = Plugin::pinned_vma_starts(d.image, rdma);
  EXPECT_TRUE(pinned.contains(b.addr));
  // The QP's driver queue mapping is pinned too.
  bool has_shadow = false;
  for (const auto& vma : d.image.vmas) {
    if (vma.tag == "qp_shadow" && pinned.contains(vma.start)) has_shadow = true;
  }
  EXPECT_TRUE(has_shadow);
}

// ---------------------------------------------------------------------------
// Full migrations
// ---------------------------------------------------------------------------

TEST_F(MigrTest, MigrationMovesGuestAndKeepsOneSidedTrafficWorking) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  Buf src = make_buf(a, 1 << 16);
  Buf dst = make_buf(b, 1 << 16);

  // Pre-migration traffic (also warms b's rkey cache towards a).
  write_u64(a, src.addr, 1);
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = dst.addr;
  wr.rkey = dst.mr.vrkey;
  wr.sge = {{src.addr, 8, src.mr.vlkey}};
  ASSERT_TRUE(a.guest->post_send(qa, wr).is_ok());
  ASSERT_TRUE(poll_one(a).has_value());
  EXPECT_EQ(read_u64(b, dst.addr), 1u);

  auto report = migrate(a, 2);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(directory_.locate(10), 2u);
  EXPECT_EQ(runtimes_[2]->find_guest(10), a.guest);
  EXPECT_EQ(runtimes_[1]->find_guest(10), nullptr);
  // The physical QPN changed; the virtual one did not.
  EXPECT_NE(a.guest->physical_qpn(qa).value(), qa);

  // Same virtual handles keep working from the new host.
  write_u64(a, src.addr, 2);
  ASSERT_TRUE(a.guest->post_send(qa, wr).is_ok());
  auto cqe = poll_one(a, sim::msec(200));
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status, CqeStatus::success);
  EXPECT_EQ(cqe->qpn, qa);
  EXPECT_EQ(read_u64(b, dst.addr), 2u);

  // And the partner direction: b writes to a's migrated memory (its cached
  // rkey was invalidated; refetch targets the new location).
  Buf bsrc = make_buf(b, 4096);
  write_u64(b, bsrc.addr, 3);
  SendWr bw;
  bw.opcode = WrOpcode::rdma_write;
  bw.remote_addr = src.addr;
  bw.rkey = src.mr.vrkey;
  bw.sge = {{bsrc.addr, 8, bsrc.mr.vlkey}};
  ASSERT_TRUE(b.guest->post_send(qb, bw).is_ok());
  ASSERT_TRUE(poll_one(b, sim::msec(200)).has_value());
  EXPECT_EQ(read_u64(a, src.addr), 3u);
}

TEST_F(MigrTest, MigrationPreservesMemoryContents) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  Buf buf = make_buf(a, 64 * 1024);
  std::vector<std::uint8_t> pattern(64 * 1024);
  for (std::size_t i = 0; i < pattern.size(); ++i) pattern[i] = static_cast<std::uint8_t>(i * 13);
  ASSERT_TRUE(a.proc->mem().write(buf.addr, pattern).is_ok());

  auto report = migrate(a, 2);
  ASSERT_TRUE(report.ok) << report.error;
  std::vector<std::uint8_t> out(pattern.size());
  ASSERT_TRUE(a.proc->mem().read(buf.addr, out).is_ok());
  EXPECT_EQ(out, pattern);
  EXPECT_GT(report.precopy_bytes, pattern.size());
}

TEST_F(MigrTest, SendRecvOrderingAcrossMigration) {
  // §5.3-style correctness: WR IDs complete in order, no dup/loss, across
  // a migration that interrupts an active send stream.
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  Buf sbuf = make_buf(a, 256 * 1024);
  Buf rbuf = make_buf(b, 256 * 1024);

  // b posts plenty of RECVs.
  for (std::uint64_t i = 0; i < 64; ++i) {
    RecvWr rwr;
    rwr.wr_id = i;
    rwr.sge = {{rbuf.addr + i * 4096, 4096, rbuf.mr.vlkey}};
    ASSERT_TRUE(b.guest->post_recv(qb, rwr).is_ok());
  }
  // a streams sends with sequence numbers; the app keeps posting via a
  // poller (which freezes during stop-and-copy and resumes after).
  std::uint64_t next_send = 0;
  auto post_some = [&] {
    while (next_send < 64) {
      SendWr wr;
      wr.wr_id = next_send;
      std::vector<std::uint8_t> marker(8);
      std::memcpy(marker.data(), &next_send, 8);
      if (!a.proc->mem().write(sbuf.addr + next_send * 4096, marker).is_ok()) return;
      wr.opcode = WrOpcode::send;
      wr.sge = {{sbuf.addr + next_send * 4096, 4096, sbuf.mr.vlkey}};
      if (!a.guest->post_send(qa, wr).is_ok()) return;
      ++next_send;
      if (next_send % 8 == 0) return;  // trickle
    }
  };
  struct PollerApp : MigratableApp {
    std::function<void()> fn;
    sim::DurationNs period;
    void on_migrated(proc::SimProcess& p) override {
      p.spawn_poller(period, fn);
    }
  } poller_app;
  poller_app.fn = post_some;
  poller_app.period = sim::usec(50);
  a.proc->spawn_poller(sim::usec(50), post_some);

  run_for(sim::usec(400));  // some sends flow pre-migration
  auto report = migrate(a, 2, &poller_app);
  ASSERT_TRUE(report.ok) << report.error;
  run_for(sim::sec(1));  // let the stream finish

  // Receiver saw 0..63 in order, exactly once, contents intact.
  for (std::uint64_t i = 0; i < 64; ++i) {
    auto cqe = poll_one(b, sim::msec(500));
    ASSERT_TRUE(cqe.has_value()) << "missing recv completion " << i;
    ASSERT_EQ(cqe->status, CqeStatus::success);
    ASSERT_EQ(cqe->wr_id, i) << "order violated";
    std::uint64_t marker = 0;
    ASSERT_TRUE(b.proc->mem()
                    .read(rbuf.addr + i * 4096, {reinterpret_cast<std::uint8_t*>(&marker), 8})
                    .is_ok());
    ASSERT_EQ(marker, i) << "content corrupted";
  }
  EXPECT_EQ(next_send, 64u);
}

TEST_F(MigrTest, MigrationWithoutPresetupAlsoCorrectButSlower) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  Buf src = make_buf(a, 4096);
  Buf dst = make_buf(b, 4096);

  MigrationOptions with;
  with.pre_setup = true;
  auto rep_with = migrate(a, 2, nullptr, with);
  ASSERT_TRUE(rep_with.ok) << rep_with.error;

  // Traffic still works after the pre-setup migration.
  write_u64(a, src.addr, 9);
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = dst.addr;
  wr.rkey = dst.mr.vrkey;
  wr.sge = {{src.addr, 8, src.mr.vlkey}};
  ASSERT_TRUE(a.guest->post_send(qa, wr).is_ok());
  ASSERT_TRUE(poll_one(a, sim::msec(200)).has_value());
  EXPECT_EQ(read_u64(b, dst.addr), 9u);

  // Migrate back, without pre-setup: blackout must include RestoreRDMA.
  MigrationOptions without;
  without.pre_setup = false;
  auto rep_without = migrate(a, 1, nullptr, without);
  ASSERT_TRUE(rep_without.ok) << rep_without.error;
  EXPECT_GT(rep_without.restore_rdma, rep_with.restore_rdma);
  EXPECT_GT(rep_without.service_blackout(), rep_with.service_blackout());
  EXPECT_EQ(rep_with.presetup_restore_rdma > 0, true);
  EXPECT_EQ(rep_without.presetup_restore_rdma, 0);

  write_u64(a, src.addr, 10);
  ASSERT_TRUE(a.guest->post_send(qa, wr).is_ok());
  ASSERT_TRUE(poll_one(a, sim::msec(200)).has_value());
  EXPECT_EQ(read_u64(b, dst.addr), 10u);
}

TEST_F(MigrTest, PendingRecvsReplayedOnDestination) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  Buf rbuf = make_buf(a, 8192);
  Buf sbuf = make_buf(b, 8192);

  // a posts RECVs that nobody matches yet.
  for (std::uint64_t i = 0; i < 2; ++i) {
    RecvWr rwr;
    rwr.wr_id = 40 + i;
    rwr.sge = {{rbuf.addr + i * 4096, 4096, rbuf.mr.vlkey}};
    ASSERT_TRUE(a.guest->post_recv(qa, rwr).is_ok());
  }
  auto report = migrate(a, 2);
  ASSERT_TRUE(report.ok) << report.error;

  // After migration, b sends; the replayed RECVs must match, in order.
  for (int i = 0; i < 2; ++i) {
    SendWr wr;
    wr.opcode = WrOpcode::send;
    wr.sge = {{sbuf.addr, 128, sbuf.mr.vlkey}};
    ASSERT_TRUE(b.guest->post_send(qb, wr).is_ok());
  }
  auto c1 = poll_one(a, sim::msec(200));
  auto c2 = poll_one(a, sim::msec(200));
  ASSERT_TRUE(c1.has_value());
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c1->wr_id, 40u);
  EXPECT_EQ(c2->wr_id, 41u);
}

TEST_F(MigrTest, ResourcefulGuestMigratesWithSrqDmMw) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VHandle srq = a.guest->create_srq(a.pd, 64).value();
  VQpn qa = make_qp(a, srq);
  VQpn qb = make_qp(b);
  connect(a, qa, b, qb);

  auto dm = a.guest->alloc_dm(8192).value();
  auto dm_mr = a.guest->reg_mr(a.pd, dm.mapped_at, 8192, rnic::kAccessLocalWrite).value();
  (void)dm_mr;
  Buf big = make_buf(a, 16384,
                     rnic::kAccessLocalWrite | rnic::kAccessRemoteWrite | rnic::kAccessMwBind);
  VHandle vmw = a.guest->bind_mw_alloc(a.pd).value();
  auto mw_vrkey = a.guest->bind_mw(qa, vmw, big.mr.vlkey, big.addr + 4096, 4096,
                                   rnic::kAccessRemoteWrite, 1);
  ASSERT_TRUE(mw_vrkey.is_ok());
  ASSERT_TRUE(poll_one(a).has_value());  // bind completion

  // Put recognizable content into the on-chip memory mapping.
  write_u64(a, dm.mapped_at, 0xD00D);

  auto report = migrate(a, 2);
  ASSERT_TRUE(report.ok) << report.error;

  // DM content survived (restored via the memory path + remap).
  EXPECT_EQ(read_u64(a, dm.mapped_at), 0xD00Du);

  // The MW still guards its window: b writes through the (stable) virtual
  // rkey of the MW; the fetch resolves to the rebound physical rkey.
  Buf bsrc = make_buf(b, 4096);
  write_u64(b, bsrc.addr, 0xCAFE);
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = big.addr + 4096;
  wr.rkey = mw_vrkey.value();
  wr.sge = {{bsrc.addr, 8, bsrc.mr.vlkey}};
  ASSERT_TRUE(b.guest->post_send(qb, wr).is_ok());
  auto cqe = poll_one(b, sim::msec(200));
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status, CqeStatus::success);
  EXPECT_EQ(read_u64(a, big.addr + 4096), 0xCAFEu);
}

TEST_F(MigrTest, MrRegisteredDuringPrecopyIsRestoredLate) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  // A big buffer stretches the pre-copy phase (dump + transfer of 64 MiB
  // takes several milliseconds) so the late registration really lands
  // inside pre-copy.
  make_buf(a, 64 << 20);

  // Start the migration; register a fresh MR while pre-copy is in flight.
  auto& dest_proc = world_.add_process("dest");
  MigrationController ctl(world_.loop(), world_.fabric(), directory_);
  MigrationReport report;
  bool done = false;
  ASSERT_TRUE(ctl.start(10, 2, dest_proc, nullptr, [&](const MigrationReport& r) {
                   report = r;
                   done = true;
                 })
                  .is_ok());
  run_for(sim::msec(2));  // into pre-copy
  ASSERT_FALSE(done);
  ASSERT_EQ(directory_.locate(10), 1u) << "must still be on the source";
  Buf late = make_buf(a, 4096);
  write_u64(a, late.addr, 0x1A7E);
  while (!done) run_for(sim::msec(1));
  ASSERT_TRUE(report.ok) << report.error;
  a.proc = &dest_proc;  // the app now lives in the destination container
  EXPECT_EQ(read_u64(a, late.addr), 0x1A7Eu) << "late MR content migrated";

  // The late MR works from the destination: b writes through its vrkey.
  Buf bsrc = make_buf(b, 4096);
  write_u64(b, bsrc.addr, 0x77);
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = late.addr;
  wr.rkey = late.mr.vrkey;
  wr.sge = {{bsrc.addr, 8, bsrc.mr.vlkey}};
  ASSERT_TRUE(b.guest->post_send(qb, wr).is_ok());
  auto cqe = poll_one(b, sim::msec(200));
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status, CqeStatus::success);
  EXPECT_EQ(read_u64(a, late.addr), 0x77u);
}

TEST_F(MigrTest, InterceptedSendsFlushAfterRestore) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  Buf src = make_buf(a, 4096);
  Buf dst = make_buf(b, 4096);

  // Run a migration with continuous background traffic (so the WBS window
  // has inflight WRs and real duration); during the window, post more sends
  // — they get intercepted.
  Buf big = make_buf(a, 1 << 20);
  Buf bigdst = make_buf(b, 1 << 20);
  int posted_during_suspend = 0;
  a.proc->spawn_poller(sim::usec(2), [&] {
    if (!a.guest->suspended()) {
      // Keep the pipe moderately full, perftest-style.
      SendWr fill;
      fill.wr_id = 1;
      fill.signaled = false;
      fill.opcode = WrOpcode::rdma_write;
      fill.remote_addr = bigdst.addr;
      fill.rkey = bigdst.mr.vrkey;
      fill.sge = {{big.addr, 1 << 18, big.mr.vlkey}};
      (void)a.guest->post_send(qa, fill);
      return;
    }
    if (a.guest->suspended() && posted_during_suspend < 3) {
      write_u64(a, src.addr, 0x5000 + static_cast<std::uint64_t>(posted_during_suspend));
      SendWr wr;
      wr.wr_id = 500 + static_cast<std::uint64_t>(posted_during_suspend);
      wr.opcode = WrOpcode::rdma_write;
      wr.remote_addr = dst.addr + 8 * static_cast<std::uint64_t>(posted_during_suspend);
      wr.rkey = dst.mr.vrkey;
      wr.sge = {{src.addr, 8, src.mr.vlkey}};
      if (a.guest->post_send(qa, wr).is_ok()) posted_during_suspend++;
    }
  });
  // NB: the poller freezes with the process at stop-and-copy, so all posts
  // happen during the WBS window (suspension active, process running).
  auto report = migrate(a, 2);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_GT(posted_during_suspend, 0);
  run_for(sim::msec(5));

  // The intercepted writes executed after restore: completions + data.
  for (int i = 0; i < posted_during_suspend; ++i) {
    auto cqe = poll_one(a, sim::msec(200));
    ASSERT_TRUE(cqe.has_value());
    EXPECT_EQ(cqe->wr_id, 500u + static_cast<std::uint64_t>(i));
    EXPECT_EQ(cqe->status, CqeStatus::success);
  }
}

TEST_F(MigrTest, MigrateBothEndpointsSequentially) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  Buf src = make_buf(a, 4096);
  Buf dst = make_buf(b, 4096);

  auto r1 = migrate(a, 2);
  ASSERT_TRUE(r1.ok) << r1.error;
  auto r2 = migrate(b, 4);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(directory_.locate(10), 2u);
  EXPECT_EQ(directory_.locate(20), 4u);

  write_u64(a, src.addr, 0xF00D);
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = dst.addr;
  wr.rkey = dst.mr.vrkey;
  wr.sge = {{src.addr, 8, src.mr.vlkey}};
  ASSERT_TRUE(a.guest->post_send(qa, wr).is_ok());
  auto cqe = poll_one(a, sim::msec(500));
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status, CqeStatus::success);
  EXPECT_EQ(read_u64(b, dst.addr), 0xF00Du);
}

TEST_F(MigrTest, WbsTimeoutPathReplaysIncompleteWrs) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  Buf src = make_buf(a, 1 << 16);
  Buf dst = make_buf(b, 1 << 16);

  // Warm the rkey cache so the replay can un-translate.
  write_u64(a, src.addr, 1);
  SendWr warm;
  warm.opcode = WrOpcode::rdma_write;
  warm.remote_addr = dst.addr;
  warm.rkey = dst.mr.vrkey;
  warm.sge = {{src.addr, 8, src.mr.vlkey}};
  ASSERT_TRUE(a.guest->post_send(qa, warm).is_ok());
  ASSERT_TRUE(poll_one(a).has_value());

  // Break the data plane: posted writes can never complete.
  world_.fabric().set_faults(net::Faults{.data_loss_prob = 1.0});
  write_u64(a, src.addr + 8, 0xEE);
  SendWr wr;
  wr.wr_id = 77;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = dst.addr + 8;
  wr.rkey = dst.mr.vrkey;
  wr.sge = {{src.addr + 8, 8, src.mr.vlkey}};
  ASSERT_TRUE(a.guest->post_send(qa, wr).is_ok());
  run_for(sim::usec(100));

  // The timeout must fire before the RC retry budget (7 x 50 ms) moves
  // the QP to error — the paper's design point: don't wait for a spotty
  // network, replay after restore instead. The network heals once the
  // service lands on the destination, so the replayed WR can complete.
  auto healer = world_.loop().schedule_every(sim::usec(100), [&] {
    if (directory_.locate(10) == 2u) world_.fabric().set_faults(net::Faults{});
  });
  MigrationOptions opts;
  opts.wbs_timeout = sim::msec(1);
  auto report = migrate(a, 2, nullptr, opts);
  healer.cancel();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_TRUE(report.wbs_timed_out);
  EXPECT_GE(report.wbs_elapsed, opts.wbs_timeout);
  auto cqe = poll_one(a, sim::msec(500));
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->wr_id, 77u);
  EXPECT_EQ(cqe->status, CqeStatus::success);
  EXPECT_EQ(read_u64(b, dst.addr + 8), 0xEEu);
}

TEST_F(MigrTest, MigrationRefusedWithRawPeer) {
  // §6: a guest connected to a non-MigrRDMA endpoint cannot be migrated.
  App a = make_app(1, 10, "a");
  auto& raw_proc = world_.add_process("raw");
  rnic::Context* raw_ctx = devices_[3]->open(raw_proc).value();
  auto raw_pd = raw_ctx->alloc_pd().value();
  auto raw_cq = raw_ctx->create_cq(64).value();
  auto raw_qpn =
      raw_ctx->create_qp({rnic::QpType::rc, raw_pd, raw_cq, raw_cq, 0, {}}).value();
  VQpn qa = make_qp(a);
  ASSERT_TRUE(a.guest->connect_qp_raw(qa, 3, raw_qpn, 1, 2).is_ok());
  EXPECT_TRUE(a.guest->has_raw_peer());

  auto& dest_proc = world_.add_process("dest");
  MigrationController ctl(world_.loop(), world_.fabric(), directory_);
  auto st = ctl.start(10, 2, dest_proc, nullptr, [](const MigrationReport&) {});
  EXPECT_EQ(st.code(), Errc::failed_precondition);
}

TEST_F(MigrTest, BlackoutComponentsArePopulated) {
  App a = make_app(1, 10, "a");
  App b = make_app(3, 20, "b");
  VQpn qa = make_qp(a), qb = make_qp(b);
  connect(a, qa, b, qb);
  make_buf(a, 1 << 20);

  auto report = migrate(a, 2);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_GT(report.dump_others, 0);
  EXPECT_GT(report.transfer, 0);
  EXPECT_GT(report.full_restore, 0);
  EXPECT_GT(report.presetup_restore_rdma, 0);
  EXPECT_GT(report.service_blackout(), 0);
  EXPECT_GE(report.comm_blackout(), report.service_blackout());
  EXPECT_GE(report.freeze_at, report.suspend_at);
  EXPECT_GE(report.resume_at, report.freeze_at);
}

}  // namespace
}  // namespace migr::migrlib
