// Flight-recorder unit tests: ring wraparound, dump-on-anomaly contents,
// the disabled-mode zero-allocation guarantee (pinned with a counting
// global operator new in this TU, like bench_simrate), and the fabric hook
// decoding real wire headers on both the burst fast path and the per-packet
// fallback.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <string>

#include "net/fabric.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/event_loop.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every allocation in the process funnels through these,
// so "zero allocations" is a hard property, not a sampling claim.
// ---------------------------------------------------------------------------

namespace {
std::uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count++;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_alloc_count++;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t a) { return ::operator new(n, a); }
// The nothrow variants must funnel through the same malloc path: libstdc++'s
// std::get_temporary_buffer (stable_sort) allocates via nothrow new but frees
// via plain operator delete, and ASan flags the mismatch if the two halves
// come from different allocators.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count++;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace migr::obs {
namespace {

PacketRecord rec(std::int64_t ts, std::uint64_t psn, std::uint32_t src = 1,
                 PacketVerdict v = PacketVerdict::delivered) {
  PacketRecord r;
  r.ts_ns = ts;
  r.psn = psn;
  r.src = src;
  r.dst = 2;
  r.qpn = 40 + src;
  r.bytes = 128;
  r.opcode = 2;
  r.verdict = v;
  return r;
}

TEST(FlightRecorderTest, RingWrapsAtCapacityDroppingOldest) {
  FlightRecorder fr(/*per_host_capacity=*/8);
  fr.set_enabled(true);
  for (std::uint64_t i = 0; i < 20; ++i) fr.record(rec(static_cast<std::int64_t>(i), i));

  const auto held = fr.records(1);
  ASSERT_EQ(held.size(), 8u);
  for (std::size_t i = 0; i < held.size(); ++i) EXPECT_EQ(held[i].psn, 12 + i);
  EXPECT_EQ(fr.total_recorded(), 20u);
  EXPECT_EQ(fr.overwritten(), 12u);

  // The last-N view is the tail of the same ring.
  const auto tail = fr.window(1, 3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().psn, 17u);
  EXPECT_EQ(tail.back().psn, 19u);

  // Rings are per source host: a second host starts its own ring.
  fr.record(rec(100, 7, /*src=*/9));
  EXPECT_EQ(fr.records(9).size(), 1u);
  EXPECT_EQ(fr.records(1).size(), 8u);
}

TEST(FlightRecorderTest, SetCapacityDiscardsAndResizes) {
  FlightRecorder fr(4);
  fr.set_enabled(true);
  for (std::uint64_t i = 0; i < 6; ++i) fr.record(rec(0, i));
  fr.set_capacity(2);
  EXPECT_TRUE(fr.records(1).empty());
  for (std::uint64_t i = 0; i < 5; ++i) fr.record(rec(0, i));
  EXPECT_EQ(fr.records(1).size(), 2u);
}

TEST(FlightRecorderTest, DumpCapturesWindowReasonAndDetail) {
  FlightRecorder fr(64);
  fr.set_enabled(true);
  fr.set_dump_window(3000);
  fr.record(rec(0, 111));                 // outside the window at dump time
  fr.record(rec(4000, 222));              // inside
  fr.record(rec(4500, 333, /*src=*/3));   // inside, other host

  const std::string dump =
      fr.trigger_dump(5000, "migration_abort", "\"guest\":7,\"phase\":\"final_transfer\"");
  EXPECT_EQ(fr.dumps_triggered(), 1u);
  EXPECT_EQ(dump, fr.last_dump_json());

  EXPECT_NE(dump.find("\"kind\":\"flight_recorder_dump\""), std::string::npos);
  EXPECT_NE(dump.find("\"reason\":\"migration_abort\""), std::string::npos);
  EXPECT_NE(dump.find("\"guest\":7"), std::string::npos);
  EXPECT_NE(dump.find("\"psn\":222"), std::string::npos);
  EXPECT_NE(dump.find("\"psn\":333"), std::string::npos);
  EXPECT_EQ(dump.find("\"psn\":111"), std::string::npos) << "pre-window packet leaked in";
  EXPECT_NE(dump.find("\"trace\":["), std::string::npos);

  // Disabled recorders refuse to dump — anomaly hooks stay free when off.
  fr.set_enabled(false);
  EXPECT_TRUE(fr.trigger_dump(6000, "migration_abort").empty());
  EXPECT_EQ(fr.dumps_triggered(), 1u);
}

TEST(FlightRecorderTest, ExportJsonCarriesEverythingHeld) {
  FlightRecorder fr(16);
  fr.set_enabled(true);
  fr.record(rec(10, 1));
  fr.record(rec(20, 2, /*src=*/5, PacketVerdict::dropped));
  const std::string json = fr.export_json();
  EXPECT_NE(json.find("\"kind\":\"flight_recorder_capture\""), std::string::npos);
  EXPECT_NE(json.find("\"total_recorded\":2"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"dropped\""), std::string::npos);
}

TEST(FlightRecorderTest, DisabledRecorderIsANoOpAndNeverAllocates) {
  FlightRecorder fr(256);
  ASSERT_FALSE(fr.enabled());
  const PacketRecord r = rec(1, 2);

  const std::uint64_t before = g_alloc_count;
  for (int i = 0; i < 10'000; ++i) fr.record(r);
  EXPECT_EQ(g_alloc_count - before, 0u) << "disabled record() allocated";

  EXPECT_EQ(fr.total_recorded(), 0u);
  EXPECT_TRUE(fr.records(1).empty());
}

TEST(FlightRecorderTest, EnabledSteadyStateRecordingDoesNotAllocate) {
  FlightRecorder fr(128);
  fr.set_enabled(true);
  fr.record(rec(0, 0));  // first touch materializes host 1's ring

  const std::uint64_t before = g_alloc_count;
  for (std::uint64_t i = 1; i < 1000; ++i) fr.record(rec(static_cast<std::int64_t>(i), i));
  EXPECT_EQ(g_alloc_count - before, 0u) << "steady-state record() allocated";
  EXPECT_EQ(fr.total_recorded(), 1000u);
}

// ---------------------------------------------------------------------------
// Fabric hook: both send paths feed the recorder and decode the RNIC wire
// header (opcode, destination QPN, PSN) at the documented fixed offsets.
// ---------------------------------------------------------------------------

constexpr std::size_t kWireHeaderBytes = 71;

net::Packet wire_packet(net::HostId src, net::HostId dst, std::uint8_t op,
                        std::uint32_t dst_qpn, std::uint64_t psn) {
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.header.resize(kWireHeaderBytes);
  std::uint8_t* h = p.header.data();
  for (std::size_t i = 0; i < kWireHeaderBytes; ++i) h[i] = 0;
  h[0] = op;
  for (int i = 0; i < 4; ++i) h[1 + i] = static_cast<std::uint8_t>(dst_qpn >> (8 * i));
  for (int i = 0; i < 8; ++i) h[9 + i] = static_cast<std::uint8_t>(psn >> (8 * i));
  return p;
}

class FabricHookTest : public ::testing::Test {
 protected:
  FabricHookTest() : fabric_(loop_) {
    EXPECT_TRUE(fabric_.attach_host(1).is_ok());
    EXPECT_TRUE(fabric_.attach_host(2).is_ok());
    fabric_.set_data_handler(2, [this](net::Packet&&) { delivered_++; });
    rec_.set_enabled(true);
    fabric_.set_recorder(&rec_);
    route_ = fabric_.route(1, 2);
    EXPECT_NE(route_, nullptr);
  }

  sim::EventLoop loop_;
  net::Fabric fabric_;
  FlightRecorder rec_{64};
  net::Fabric::Route* route_ = nullptr;
  int delivered_ = 0;
};

TEST_F(FabricHookTest, PerPacketPathDecodesHeaderAndVerdicts) {
  fabric_.set_force_slow_path(true);
  fabric_.send_data(*route_, wire_packet(1, 2, /*op=*/3, /*dst_qpn=*/77, /*psn=*/900'001));
  loop_.run();
  EXPECT_EQ(delivered_, 1);

  auto held = rec_.records(1);
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0].opcode, 3u);
  EXPECT_EQ(held[0].qpn, 77u);
  EXPECT_EQ(held[0].psn, 900'001u);
  EXPECT_EQ(held[0].dst, 2u);
  EXPECT_EQ(held[0].verdict, PacketVerdict::delivered);

  // Certain loss: the drop is recorded with its verdict, not silently eaten.
  net::Faults f;
  f.data_loss_prob = 1.0;
  fabric_.set_faults(f);
  fabric_.send_data(*route_, wire_packet(1, 2, 3, 77, 900'002));
  loop_.run();
  held = rec_.records(1);
  ASSERT_EQ(held.size(), 2u);
  EXPECT_EQ(held[1].psn, 900'002u);
  EXPECT_EQ(held[1].verdict, PacketVerdict::dropped);

  // Partitioned destination: same path, partitioned verdict.
  fabric_.set_faults({});
  fabric_.set_partitioned(2, true);
  fabric_.send_data(*route_, wire_packet(1, 2, 3, 77, 900'003));
  loop_.run();
  held = rec_.records(1);
  ASSERT_EQ(held.size(), 3u);
  EXPECT_EQ(held[2].verdict, PacketVerdict::partitioned);
}

TEST_F(FabricHookTest, BurstFastPathRecordsEveryPacketOfTheTrain) {
  ASSERT_TRUE(fabric_.data_fast_path());
  auto train = fabric_.acquire_train();
  for (std::uint64_t i = 0; i < 4; ++i) {
    train.push_back(wire_packet(1, 2, /*op=*/2, /*dst_qpn=*/55, /*psn=*/100 + i));
  }
  fabric_.send_data_burst(*route_, std::move(train));
  loop_.run();
  EXPECT_EQ(delivered_, 4);

  const auto held = rec_.records(1);
  ASSERT_EQ(held.size(), 4u);
  for (std::size_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(held[i].psn, 100 + i);
    EXPECT_EQ(held[i].qpn, 55u);
    EXPECT_EQ(held[i].opcode, 2u);
    EXPECT_EQ(held[i].verdict, PacketVerdict::delivered);
  }
}

TEST_F(FabricHookTest, NonRnicFramesRecordWithSentinelOpcode) {
  net::Packet p(1, 2, common::Bytes{0xde, 0xad, 0xbe, 0xef});
  fabric_.send_data(*route_, std::move(p));
  loop_.run();
  const auto held = rec_.records(1);
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0].opcode, 0xffu);
  EXPECT_EQ(held[0].qpn, 0u);
  EXPECT_EQ(held[0].bytes, 4u);
}

}  // namespace
}  // namespace migr::obs
