// Edge cases of the RNIC substrate that the main rnic_test exercises only
// in passing: multi-element SGE lists, zero-length operations, CQ overflow,
// ACK coalescing, atomic validation, MW rebind invalidation, duplicate
// suppression under pathological loss, and reset semantics.
#include <gtest/gtest.h>

#include <cstring>

#include "rnic/device.hpp"
#include "rnic/world.hpp"

namespace migr::rnic {
namespace {

using common::Errc;

class RnicEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_a_ = &world_.add_device(1);
    dev_b_ = &world_.add_device(2);
    ctx_a_ = dev_a_->open(world_.add_process("a")).value();
    ctx_b_ = dev_b_->open(world_.add_process("b")).value();
    pd_a_ = ctx_a_->alloc_pd().value();
    pd_b_ = ctx_b_->alloc_pd().value();
    cq_a_ = ctx_a_->create_cq(256).value();
    cq_b_ = ctx_b_->create_cq(256).value();
  }

  std::pair<Qpn, Qpn> pair(QpCaps caps = {}) {
    Qpn qa = ctx_a_->create_qp({QpType::rc, pd_a_, cq_a_, cq_a_, 0, caps}).value();
    Qpn qb = ctx_b_->create_qp({QpType::rc, pd_b_, cq_b_, cq_b_, 0, caps}).value();
    EXPECT_TRUE(rc_connect(*ctx_a_, qa, *ctx_b_, qb).is_ok());
    return {qa, qb};
  }

  struct Buf {
    proc::VirtAddr addr;
    Mr mr;
  };
  Buf buf(Context* ctx, Handle pd, std::uint64_t size,
          std::uint32_t access = kAccessLocalWrite | kAccessRemoteWrite |
                                 kAccessRemoteRead | kAccessRemoteAtomic) {
    Buf b;
    b.addr = ctx->process().mem().mmap(size, "b").value();
    b.mr = ctx->reg_mr(pd, b.addr, size, access).value();
    return b;
  }

  Cqe wait_cqe(Context* ctx, Handle cq) {
    Cqe cqe;
    const sim::TimeNs deadline = world_.loop().now() + sim::sec(2);
    while (world_.loop().now() < deadline) {
      if (ctx->poll_cq(cq, {&cqe, 1}) == 1) return cqe;
      world_.loop().run_until(world_.loop().now() + sim::usec(20));
    }
    ADD_FAILURE() << "no CQE";
    return cqe;
  }

  rnic::World world_;
  Device* dev_a_ = nullptr;
  Device* dev_b_ = nullptr;
  Context* ctx_a_ = nullptr;
  Context* ctx_b_ = nullptr;
  Handle pd_a_ = 0, pd_b_ = 0, cq_a_ = 0, cq_b_ = 0;
};

TEST_F(RnicEdgeTest, MultiSgeGatherScatter) {
  auto [qa, qb] = pair();
  Buf s1 = buf(ctx_a_, pd_a_, 4096);
  Buf s2 = buf(ctx_a_, pd_a_, 4096);
  Buf r1 = buf(ctx_b_, pd_b_, 4096);
  Buf r2 = buf(ctx_b_, pd_b_, 4096);
  std::vector<std::uint8_t> pa(100, 0xAA), pb(200, 0xBB);
  ASSERT_TRUE(ctx_a_->process().mem().write(s1.addr, pa).is_ok());
  ASSERT_TRUE(ctx_a_->process().mem().write(s2.addr, pb).is_ok());

  // Receiver scatters across two SGEs with different split points.
  RecvWr rwr;
  rwr.sge = {{r1.addr, 150, r1.mr.lkey}, {r2.addr, 4096, r2.mr.lkey}};
  ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());

  SendWr wr;
  wr.opcode = WrOpcode::send;
  wr.sge = {{s1.addr, 100, s1.mr.lkey}, {s2.addr, 200, s2.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  Cqe cqe = wait_cqe(ctx_b_, cq_b_);
  EXPECT_EQ(cqe.byte_len, 300u);
  // First 150 bytes land in r1 (100 of 0xAA then 50 of 0xBB), rest in r2.
  std::vector<std::uint8_t> out(150);
  ASSERT_TRUE(ctx_b_->process().mem().read(r1.addr, out).is_ok());
  EXPECT_EQ(out[99], 0xAA);
  EXPECT_EQ(out[100], 0xBB);
  std::vector<std::uint8_t> out2(150);
  ASSERT_TRUE(ctx_b_->process().mem().read(r2.addr, out2).is_ok());
  EXPECT_EQ(out2[0], 0xBB);
  EXPECT_EQ(out2[149], 0xBB);
}

TEST_F(RnicEdgeTest, ZeroLengthSend) {
  auto [qa, qb] = pair();
  Buf rb = buf(ctx_b_, pd_b_, 4096);
  RecvWr rwr;
  rwr.wr_id = 9;
  rwr.sge = {{rb.addr, 4096, rb.mr.lkey}};
  ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());
  SendWr wr;
  wr.wr_id = 8;
  wr.opcode = WrOpcode::send;  // empty SGE list: zero-length message
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  Cqe scqe = wait_cqe(ctx_a_, cq_a_);
  EXPECT_EQ(scqe.wr_id, 8u);
  Cqe rcqe = wait_cqe(ctx_b_, cq_b_);
  EXPECT_EQ(rcqe.wr_id, 9u);
  EXPECT_EQ(rcqe.byte_len, 0u);
}

TEST_F(RnicEdgeTest, CqOverflowSetsFlagInsteadOfCorrupting) {
  Handle tiny_cq = ctx_b_->create_cq(2).value();
  Qpn qb = ctx_b_->create_qp({QpType::rc, pd_b_, tiny_cq, tiny_cq, 0, {}}).value();
  Qpn qa = ctx_a_->create_qp({QpType::rc, pd_a_, cq_a_, cq_a_, 0, {}}).value();
  ASSERT_TRUE(rc_connect(*ctx_a_, qa, *ctx_b_, qb).is_ok());
  Buf sb = buf(ctx_a_, pd_a_, 4096);
  Buf rb = buf(ctx_b_, pd_b_, 4096);
  for (int i = 0; i < 4; ++i) {
    RecvWr rwr;
    rwr.sge = {{rb.addr, 1024, rb.mr.lkey}};
    ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());
    SendWr wr;
    wr.opcode = WrOpcode::send;
    wr.sge = {{sb.addr, 16, sb.mr.lkey}};
    ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  }
  world_.loop().run_until(world_.loop().now() + sim::msec(5));
  EXPECT_TRUE(ctx_b_->find_cq(tiny_cq)->overflowed);
}

TEST_F(RnicEdgeTest, AckCoalescingOnMultiPacketMessages) {
  auto [qa, qb] = pair();
  const std::uint64_t size = 64 * 4096;  // 64 packets, acked every 16 + last
  Buf sb = buf(ctx_a_, pd_a_, size);
  Buf db = buf(ctx_b_, pd_b_, size);
  const auto tx_before = dev_b_->counters().tx_packets;
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = db.addr;
  wr.rkey = db.mr.rkey;
  wr.sge = {{sb.addr, static_cast<std::uint32_t>(size), sb.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  wait_cqe(ctx_a_, cq_a_);
  const auto acks = dev_b_->counters().tx_packets - tx_before;
  EXPECT_LE(acks, 6u) << "ACKs must be coalesced, not per-packet";
  EXPECT_GE(acks, 1u);
}

TEST_F(RnicEdgeTest, MisalignedAtomicRejectedAtPostTime) {
  auto [qa, qb] = pair();
  Buf lb = buf(ctx_a_, pd_a_, 4096);
  Buf rb = buf(ctx_b_, pd_b_, 4096);
  SendWr wr;
  wr.opcode = WrOpcode::atomic_fetch_and_add;
  wr.remote_addr = rb.addr + 3;  // misaligned
  wr.rkey = rb.mr.rkey;
  wr.compare_add = 1;
  wr.sge = {{lb.addr, 8, lb.mr.lkey}};
  EXPECT_EQ(ctx_a_->post_send(qa, wr).code(), Errc::invalid_argument);
  wr.remote_addr = rb.addr;
  wr.sge = {{lb.addr, 4, lb.mr.lkey}};  // wrong operand size
  EXPECT_EQ(ctx_a_->post_send(qa, wr).code(), Errc::invalid_argument);
}

TEST_F(RnicEdgeTest, AtomicDeniedWithoutRemoteAtomicAccess) {
  auto [qa, qb] = pair();
  Buf lb = buf(ctx_a_, pd_a_, 4096);
  Buf rb = buf(ctx_b_, pd_b_, 4096, kAccessLocalWrite | kAccessRemoteWrite);
  SendWr wr;
  wr.opcode = WrOpcode::atomic_fetch_and_add;
  wr.remote_addr = rb.addr;
  wr.rkey = rb.mr.rkey;
  wr.compare_add = 1;
  wr.sge = {{lb.addr, 8, lb.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  EXPECT_EQ(wait_cqe(ctx_a_, cq_a_).status, CqeStatus::remote_access_err);
}

TEST_F(RnicEdgeTest, MwRebindInvalidatesOldRkey) {
  auto [qa, qb] = pair();
  Buf sb = buf(ctx_a_, pd_a_, 4096);
  Buf db = buf(ctx_b_, pd_b_, 8192,
               kAccessLocalWrite | kAccessRemoteWrite | kAccessMwBind);
  Handle mw = ctx_b_->alloc_mw(pd_b_).value();
  Rkey old_rkey =
      ctx_b_->bind_mw(qb, mw, db.mr.lkey, db.addr, 4096, kAccessRemoteWrite, 1).value();
  wait_cqe(ctx_b_, cq_b_);
  Rkey new_rkey =
      ctx_b_->bind_mw(qb, mw, db.mr.lkey, db.addr + 4096, 4096, kAccessRemoteWrite, 2)
          .value();
  wait_cqe(ctx_b_, cq_b_);
  EXPECT_NE(old_rkey, new_rkey);

  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = db.addr;
  wr.rkey = old_rkey;  // stale: rebind invalidated it
  wr.sge = {{sb.addr, 64, sb.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  EXPECT_EQ(wait_cqe(ctx_a_, cq_a_).status, CqeStatus::remote_access_err);
}

TEST_F(RnicEdgeTest, HeavyLossLargeWriteEventuallyCompletes) {
  world_.fabric().set_faults(net::Faults{.data_loss_prob = 0.15});
  auto [qa, qb] = pair();
  const std::uint64_t size = 32 * 4096;
  Buf sb = buf(ctx_a_, pd_a_, size);
  Buf db = buf(ctx_b_, pd_b_, size);
  std::vector<std::uint8_t> pattern(size);
  for (std::size_t i = 0; i < size; ++i) pattern[i] = static_cast<std::uint8_t>(i * 31);
  ASSERT_TRUE(ctx_a_->process().mem().write(sb.addr, pattern).is_ok());
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = db.addr;
  wr.rkey = db.mr.rkey;
  wr.sge = {{sb.addr, static_cast<std::uint32_t>(size), sb.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  Cqe cqe = wait_cqe(ctx_a_, cq_a_);
  ASSERT_EQ(cqe.status, CqeStatus::success);
  std::vector<std::uint8_t> out(size);
  ASSERT_TRUE(ctx_b_->process().mem().read(db.addr, out).is_ok());
  EXPECT_EQ(out, pattern);
  EXPECT_GT(dev_a_->counters().retransmits + dev_b_->counters().out_of_sequence, 0u);
}

TEST_F(RnicEdgeTest, ReadUnderLossEventuallyCompletes) {
  world_.fabric().set_faults(net::Faults{.data_loss_prob = 0.2});
  auto [qa, qb] = pair();
  Buf lb = buf(ctx_a_, pd_a_, 16384);
  Buf rb = buf(ctx_b_, pd_b_, 16384);
  std::vector<std::uint8_t> pattern(16384, 0x3C);
  ASSERT_TRUE(ctx_b_->process().mem().write(rb.addr, pattern).is_ok());
  SendWr wr;
  wr.opcode = WrOpcode::rdma_read;
  wr.remote_addr = rb.addr;
  wr.rkey = rb.mr.rkey;
  wr.sge = {{lb.addr, 16384, lb.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  Cqe cqe = wait_cqe(ctx_a_, cq_a_);
  ASSERT_EQ(cqe.status, CqeStatus::success);
  std::vector<std::uint8_t> out(16384);
  ASSERT_TRUE(ctx_a_->process().mem().read(lb.addr, out).is_ok());
  EXPECT_EQ(out, pattern);
}

TEST_F(RnicEdgeTest, AtomicUnderLossExecutesExactlyOnce) {
  world_.fabric().set_faults(net::Faults{.data_loss_prob = 0.3});
  auto [qa, qb] = pair();
  Buf lb = buf(ctx_a_, pd_a_, 4096);
  Buf rb = buf(ctx_b_, pd_b_, 4096);
  for (int i = 0; i < 10; ++i) {
    SendWr wr;
    wr.opcode = WrOpcode::atomic_fetch_and_add;
    wr.remote_addr = rb.addr;
    wr.rkey = rb.mr.rkey;
    wr.compare_add = 1;
    wr.sge = {{lb.addr, 8, lb.mr.lkey}};
    ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
    ASSERT_EQ(wait_cqe(ctx_a_, cq_a_).status, CqeStatus::success);
  }
  std::uint64_t v = 0;
  ASSERT_TRUE(
      ctx_b_->process().mem().read(rb.addr, {reinterpret_cast<std::uint8_t*>(&v), 8}).is_ok());
  // The responder's replay cache must absorb retried atomics (exactly-once).
  EXPECT_EQ(v, 10u);
}

TEST_F(RnicEdgeTest, ResetClearsCountersAndQueues) {
  auto [qa, qb] = pair();
  Buf sb = buf(ctx_a_, pd_a_, 4096);
  Buf rb = buf(ctx_b_, pd_b_, 4096);
  RecvWr rwr;
  rwr.sge = {{rb.addr, 4096, rb.mr.lkey}};
  ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());
  SendWr wr;
  wr.opcode = WrOpcode::send;
  wr.sge = {{sb.addr, 16, sb.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  wait_cqe(ctx_a_, cq_a_);
  EXPECT_EQ(ctx_a_->find_qp(qa)->n_sent, 1u);
  ASSERT_TRUE(ctx_a_->modify_qp_reset(qa).is_ok());
  const Qp* qp = ctx_a_->find_qp(qa);
  EXPECT_EQ(qp->state, QpState::reset);
  EXPECT_EQ(qp->n_sent, 0u);
  EXPECT_TRUE(qp->sq.empty());
  // And it can be brought back up.
  ASSERT_TRUE(ctx_a_->modify_qp_init(qa).is_ok());
}

TEST_F(RnicEdgeTest, StalePacketsForDestroyedQpAreDropped) {
  auto [qa, qb] = pair();
  Buf sb = buf(ctx_a_, pd_a_, 1 << 16);
  Buf db = buf(ctx_b_, pd_b_, 1 << 16);
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = db.addr;
  wr.rkey = db.mr.rkey;
  wr.sge = {{sb.addr, 1 << 16, sb.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  // Destroy the receiver while packets are in flight: they must vanish
  // without crashing; the sender eventually errors out.
  ASSERT_TRUE(ctx_b_->destroy_qp(qb).is_ok());
  world_.loop().run_until(world_.loop().now() + sim::msec(500));
  EXPECT_EQ(ctx_a_->query_qp_state(qa).value(), QpState::err);
}

TEST_F(RnicEdgeTest, TailLossAfterPartialAckStillRetransmits) {
  // Regression for the retransmit-timer tail stall: an ACK that makes
  // partial progress resets last_progress, every outstanding timer then
  // fires inside the quiet window and early-returns — if none of them
  // re-arms, the unacked tail is never retransmitted and the QP hangs
  // forever with work on its SQ.
  auto [qa, qb] = pair();
  Buf sb = buf(ctx_a_, pd_a_, 4096);
  Buf db = buf(ctx_b_, pd_b_, 4096);
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = db.addr;
  wr.rkey = db.mr.rkey;
  wr.sge = {{sb.addr, 64, sb.mr.lkey}};

  // WRITE #1 goes through cleanly; run until its packet and the returning
  // ACK are already on the wire (propagation is 2 us each way).
  wr.wr_id = 1;
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  world_.loop().run_until(world_.loop().now() + sim::usec(3));

  // WRITE #2 is dropped at transmission; the only recovery path left is
  // the retransmit-timer chain.
  world_.fabric().set_faults(net::Faults{.data_loss_prob = 1.0});
  wr.wr_id = 2;
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  world_.loop().run_until(world_.loop().now() + sim::usec(3));
  world_.fabric().set_faults(net::Faults{});

  // ACK #1 lands now: partial cumulative progress, WRITE #2 still unacked.
  Cqe c1 = wait_cqe(ctx_a_, cq_a_);
  EXPECT_EQ(c1.wr_id, 1u);
  ASSERT_EQ(c1.status, CqeStatus::success);
  ASSERT_FALSE(ctx_a_->find_qp(qa)->sq.empty());

  // The re-armed timer must eventually retransmit the tail.
  Cqe c2 = wait_cqe(ctx_a_, cq_a_);
  EXPECT_EQ(c2.wr_id, 2u);
  EXPECT_EQ(c2.status, CqeStatus::success);
  EXPECT_TRUE(ctx_a_->find_qp(qa)->sq.empty());
  EXPECT_GT(dev_a_->counters().retransmits, 0u);
  EXPECT_TRUE(dev_a_->audit_stuck_qps(sim::msec(200)).empty());
}

TEST_F(RnicEdgeTest, ProgressFreeNakRewindsExhaustRetryBudget) {
  // A peer that NAKs every retransmission without ever advancing the
  // cumulative ACK point must not keep the requester rewinding forever:
  // each progress-free sequence NAK burns retry budget and the QP flushes
  // to error once it is exhausted. Forge the NAK storm on the wire (the
  // responder QP is destroyed, so nothing real answers).
  auto [qa, qb] = pair();
  Buf sb = buf(ctx_a_, pd_a_, 4096);
  ASSERT_TRUE(ctx_b_->destroy_qp(qb).is_ok());
  SendWr wr;
  wr.wr_id = 77;
  wr.opcode = WrOpcode::send;
  wr.sge = {{sb.addr, 64, sb.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  world_.loop().run_until(world_.loop().now() + sim::usec(1));  // emitted

  const Psn stuck_psn = ctx_a_->find_qp(qa)->acked_psn;  // rewind target: no progress
  for (int i = 0; i < 10; ++i) {
    WirePacket nak;
    nak.op = PktOp::nak;
    nak.src_qpn = qb;
    nak.dst_qpn = qa;
    nak.psn = stuck_psn;
    world_.fabric().send_data({/*src=*/2, /*dst=*/1, nak.serialize()});
    world_.loop().run_until(world_.loop().now() + sim::usec(10));
    if (ctx_a_->query_qp_state(qa).value() == QpState::err) break;
  }

  Cqe cqe = wait_cqe(ctx_a_, cq_a_);
  EXPECT_EQ(cqe.wr_id, 77u);
  EXPECT_EQ(cqe.status, CqeStatus::retry_exceeded);
  EXPECT_EQ(ctx_a_->query_qp_state(qa).value(), QpState::err);
  // Budget-bounded: well before the 50 ms retransmit-timeout path could
  // have contributed anything.
  EXPECT_LT(world_.loop().now(), sim::msec(1));
}

TEST_F(RnicEdgeTest, RnrNaksDoNotConsumeRetryBudget) {
  // Receiver-not-ready is flow control, not network damage: a SEND posted
  // long before any RECV must survive arbitrarily many RNR retry rounds
  // and complete once the RECV finally appears.
  auto [qa, qb] = pair();
  Buf sb = buf(ctx_a_, pd_a_, 4096);
  Buf rb = buf(ctx_b_, pd_b_, 4096);
  SendWr wr;
  wr.wr_id = 5;
  wr.opcode = WrOpcode::send;
  wr.sge = {{sb.addr, 64, sb.mr.lkey}};
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  // Dozens of RNR rounds' worth of sim time; the fatal budget is 7.
  world_.loop().run_until(world_.loop().now() + sim::msec(2));
  ASSERT_EQ(ctx_a_->query_qp_state(qa).value(), QpState::rts);

  RecvWr rwr;
  rwr.sge = {{rb.addr, 4096, rb.mr.lkey}};
  ASSERT_TRUE(ctx_b_->post_recv(qb, rwr).is_ok());
  EXPECT_EQ(wait_cqe(ctx_a_, cq_a_).status, CqeStatus::success);
  EXPECT_EQ(wait_cqe(ctx_b_, cq_b_).status, CqeStatus::success);
}

TEST_F(RnicEdgeTest, NakSentinelClearedAcrossReconnect) {
  // The one-NAK-per-gap-event sentinel must not leak across a QP's
  // reconnect (reset->init->rtr), or a stale value equal to the new
  // expected PSN suppresses the first NAK of the QP's next life and gap
  // recovery silently degrades from ~1 RTT to a full retransmit timeout.
  auto [qa, qb] = pair();
  ASSERT_TRUE(ctx_a_->modify_qp_reset(qa).is_ok());
  EXPECT_EQ(ctx_a_->find_qp(qa)->last_nak_psn, static_cast<Psn>(-1));
  ASSERT_TRUE(ctx_b_->modify_qp_reset(qb).is_ok());

  // Poison the sentinel with the exact PSN the reconnect installs; the
  // rtr transition must clear it.
  ctx_b_->find_qp_mut(qb)->last_nak_psn = 1000;
  ASSERT_TRUE(rc_connect(*ctx_a_, qa, *ctx_b_, qb).is_ok());
  EXPECT_EQ(ctx_b_->find_qp(qb)->last_nak_psn, static_cast<Psn>(-1));

  // Behavioral check: drop the first WRITE, let the second through. The
  // receiver sees a PSN gap and must NAK immediately — recovery happens in
  // microseconds, not at the 50 ms retransmit timeout.
  Buf sb = buf(ctx_a_, pd_a_, 4096);
  Buf db = buf(ctx_b_, pd_b_, 4096);
  SendWr wr;
  wr.opcode = WrOpcode::rdma_write;
  wr.remote_addr = db.addr;
  wr.rkey = db.mr.rkey;
  wr.sge = {{sb.addr, 64, sb.mr.lkey}};
  world_.fabric().set_faults(net::Faults{.data_loss_prob = 1.0});
  wr.wr_id = 1;
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  world_.loop().run_until(world_.loop().now() + sim::usec(1));  // emitted + dropped
  world_.fabric().set_faults(net::Faults{});
  wr.wr_id = 2;
  ASSERT_TRUE(ctx_a_->post_send(qa, wr).is_ok());
  const sim::TimeNs t0 = world_.loop().now();
  EXPECT_EQ(wait_cqe(ctx_a_, cq_a_).status, CqeStatus::success);
  EXPECT_EQ(wait_cqe(ctx_a_, cq_a_).status, CqeStatus::success);
  EXPECT_LT(world_.loop().now() - t0, sim::msec(10)) << "gap recovery took the slow"
                                                        " timeout path; NAK was suppressed";
}

TEST_F(RnicEdgeTest, TooManySgesRejected) {
  auto [qa, qb] = pair();
  Buf sb = buf(ctx_a_, pd_a_, 1 << 16);
  SendWr wr;
  wr.opcode = WrOpcode::send;
  for (int i = 0; i < 20; ++i) wr.sge.push_back({sb.addr, 16, sb.mr.lkey});
  EXPECT_EQ(ctx_a_->post_send(qa, wr).code(), Errc::invalid_argument);
}

}  // namespace
}  // namespace migr::rnic
