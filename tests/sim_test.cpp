#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.hpp"

namespace migr::sim {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_in(30, [&] { order.push_back(3); });
  loop.schedule_in(10, [&] { order.push_back(1); });
  loop.schedule_in(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, EqualTimestampsAreFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_in(100, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  auto h = loop.schedule_in(10, [&] { fired = true; });
  h.cancel();
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, RunUntilAdvancesClockToDeadline) {
  EventLoop loop;
  int count = 0;
  loop.schedule_in(10, [&] { count++; });
  loop.schedule_in(100, [&] { count++; });
  loop.run_until(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now(), 50);
  loop.run_until(100);
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, NestedSchedulingDuringRun) {
  EventLoop loop;
  std::vector<TimeNs> at;
  loop.schedule_in(10, [&] {
    at.push_back(loop.now());
    loop.schedule_in(5, [&] { at.push_back(loop.now()); });
  });
  loop.run();
  EXPECT_EQ(at, (std::vector<TimeNs>{10, 15}));
}

TEST(EventLoop, PeriodicTaskFiresUntilCancelled) {
  EventLoop loop;
  int ticks = 0;
  EventHandle h = loop.schedule_every(10, [&] {
    if (++ticks == 3) h.cancel();
  });
  loop.run_until(1000);
  EXPECT_EQ(ticks, 3);
}

TEST(EventLoop, PeriodicFirstDelayOverride) {
  EventLoop loop;
  TimeNs first = -1;
  auto h = loop.schedule_every(100, [&] {
    if (first < 0) first = loop.now();
  }, /*first_delay=*/7);
  loop.run_until(500);
  h.cancel();
  EXPECT_EQ(first, 7);
}

TEST(EventLoop, StopBreaksRun) {
  EventLoop loop;
  int count = 0;
  loop.schedule_in(1, [&] {
    count++;
    loop.stop();
  });
  loop.schedule_in(2, [&] { count++; });
  loop.run();
  EXPECT_EQ(count, 1);
  loop.run();  // resumes
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  loop.schedule_in(100, [] {});
  loop.run();
  ASSERT_EQ(loop.now(), 100);
  TimeNs fired_at = -1;
  loop.schedule_at(5, [&] { fired_at = loop.now(); });  // in the past
  loop.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Time, TransmitTime) {
  // 1250 bytes at 100 Gbps = 100 ns.
  EXPECT_EQ(transmit_time(1250, 100.0), 100);
  // 4 KiB at 100 Gbps ≈ 327 ns.
  EXPECT_NEAR(static_cast<double>(transmit_time(4096, 100.0)), 327.68, 1.0);
}

}  // namespace
}  // namespace migr::sim
