#include <gtest/gtest.h>

#include "net/fabric.hpp"

namespace migr::net {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fabric_.attach_host(1).is_ok());
    ASSERT_TRUE(fabric_.attach_host(2).is_ok());
  }

  sim::EventLoop loop_;
  Fabric fabric_{loop_, FabricConfig{}, 99};
};

common::Bytes make_payload(std::size_t n, std::uint8_t fill = 0xCD) {
  return common::Bytes(n, fill);
}

TEST_F(FabricTest, DuplicateAttachRejected) {
  EXPECT_EQ(fabric_.attach_host(1).code(), common::Errc::already_exists);
}

TEST_F(FabricTest, DataPacketDelivered) {
  std::size_t received = 0;
  fabric_.set_data_handler(2, [&](Packet&& p) {
    received = p.body.size();
    EXPECT_EQ(p.src, 1u);
  });
  fabric_.send_data(Packet{1, 2, make_payload(1000)});
  loop_.run();
  EXPECT_EQ(received, 1000u);
}

TEST_F(FabricTest, DeliveryPaysSerializationAndPropagation) {
  sim::TimeNs arrival = -1;
  fabric_.set_data_handler(2, [&](Packet&&) { arrival = loop_.now(); });
  const std::size_t bytes = 4096;
  fabric_.send_data(Packet{1, 2, make_payload(bytes)});
  loop_.run();
  const auto expected = fabric_.wire_time(bytes + fabric_.config().header_bytes) +
                        fabric_.config().propagation;
  EXPECT_EQ(arrival, expected);
}

TEST_F(FabricTest, EgressSerializesBackToBack) {
  std::vector<sim::TimeNs> arrivals;
  fabric_.set_data_handler(2, [&](Packet&&) { arrivals.push_back(loop_.now()); });
  for (int i = 0; i < 3; ++i) fabric_.send_data(Packet{1, 2, make_payload(4096)});
  loop_.run();
  ASSERT_EQ(arrivals.size(), 3u);
  const auto per_pkt = fabric_.wire_time(4096 + fabric_.config().header_bytes);
  EXPECT_EQ(arrivals[1] - arrivals[0], per_pkt);
  EXPECT_EQ(arrivals[2] - arrivals[1], per_pkt);
}

TEST_F(FabricTest, LossInjectionDropsSome) {
  fabric_.set_faults(Faults{.data_loss_prob = 0.5});
  int received = 0;
  fabric_.set_data_handler(2, [&](Packet&&) { received++; });
  for (int i = 0; i < 200; ++i) fabric_.send_data(Packet{1, 2, make_payload(100)});
  loop_.run();
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_EQ(fabric_.stats(1).data_packets_dropped + static_cast<std::uint64_t>(received),
            200u);
}

TEST_F(FabricTest, PartitionKillsBothPlanes) {
  int data = 0, ctrl = 0;
  fabric_.set_data_handler(2, [&](Packet&&) { data++; });
  fabric_.register_service(2, "svc", [&](HostId, common::Bytes&&) { ctrl++; });
  fabric_.set_partitioned(2, true);
  fabric_.send_data(Packet{1, 2, make_payload(10)});
  (void)fabric_.send_ctrl(1, 2, "svc", make_payload(10));
  loop_.run();
  EXPECT_EQ(data, 0);
  EXPECT_EQ(ctrl, 0);
  fabric_.set_partitioned(2, false);
  fabric_.send_data(Packet{1, 2, make_payload(10)});
  (void)fabric_.send_ctrl(1, 2, "svc", make_payload(10));
  loop_.run();
  EXPECT_EQ(data, 1);
  EXPECT_EQ(ctrl, 1);
}

TEST_F(FabricTest, CtrlPlaneRoutedByService) {
  std::string got;
  fabric_.register_service(2, "migr.notify", [&](HostId src, common::Bytes&& b) {
    got.assign(b.begin(), b.end());
    EXPECT_EQ(src, 1u);
  });
  common::Bytes msg{'h', 'i'};
  (void)fabric_.send_ctrl(1, 2, "migr.notify", msg);
  loop_.run();
  EXPECT_EQ(got, "hi");
}

TEST_F(FabricTest, CtrlPlaneInOrderPerPair) {
  std::vector<int> order;
  fabric_.register_service(2, "svc", [&](HostId, common::Bytes&& b) {
    order.push_back(b[0]);
  });
  for (int i = 0; i < 5; ++i) {
    (void)fabric_.send_ctrl(1, 2, "svc", common::Bytes{static_cast<std::uint8_t>(i)});
  }
  loop_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(FabricTest, CtrlTransferTimeScalesWithSize) {
  // A 100 MB image at 100 Gbps should take ~8 ms of port time.
  const auto done = fabric_.send_ctrl(1, 2, "svc", make_payload(100 << 20));
  ASSERT_TRUE(done.is_ok());
  EXPECT_NEAR(sim::to_msec(done.value()), 8.39, 0.1);
}

TEST_F(FabricTest, CtrlToUnattachedHostReportsError) {
  EXPECT_EQ(fabric_.send_ctrl(1, 99, "svc", make_payload(8)).code(),
            common::Errc::not_found);
  EXPECT_EQ(fabric_.send_ctrl(99, 1, "svc", make_payload(8)).code(),
            common::Errc::not_found);
}

TEST_F(FabricTest, UnregisteredServiceIsSilentlyDropped) {
  (void)fabric_.send_ctrl(1, 2, "ghost", make_payload(1));
  loop_.run();  // no crash, nothing delivered
  SUCCEED();
}

TEST_F(FabricTest, StatsCount) {
  fabric_.set_data_handler(2, [](Packet&&) {});
  fabric_.send_data(Packet{1, 2, make_payload(500)});
  loop_.run();
  EXPECT_EQ(fabric_.stats(1).data_packets_tx, 1u);
  EXPECT_EQ(fabric_.stats(1).data_bytes_tx, 500u);
  EXPECT_EQ(fabric_.stats(2).data_packets_rx, 1u);
  EXPECT_EQ(fabric_.stats(2).data_bytes_rx, 500u);
}

}  // namespace
}  // namespace migr::net
