// Property-style parameterized sweeps (TEST_P) over the core invariants:
//
//  * transport: for any message size / loss rate / opcode, completions
//    arrive in posting order, exactly once, content intact;
//  * migration: for any QP count / opcode / pre-setup choice, the §5.3
//    correctness criteria hold across a live migration, and the report's
//    blackout components are consistent;
//  * serialization: random RdmaImages and page sets round-trip;
//  * address space: random operation sequences agree with a reference model.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "apps/perftest.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "migr/migration.hpp"
#include "rnic/world.hpp"

namespace migr {
namespace {

// ---------------------------------------------------------------------------
// Transport properties
// ---------------------------------------------------------------------------

struct TransportParam {
  std::uint32_t msg_size;
  double loss;
  rnic::WrOpcode opcode;
};

class TransportProperty : public ::testing::TestWithParam<TransportParam> {};

TEST_P(TransportProperty, OrderedExactlyOnceDelivery) {
  const auto param = GetParam();
  rnic::World world;
  world.fabric().set_faults(net::Faults{.data_loss_prob = param.loss});
  auto& dev_a = world.add_device(1);
  auto& dev_b = world.add_device(2);
  (void)dev_a;
  (void)dev_b;
  migrlib::GuestDirectory dir;
  migrlib::MigrRdmaRuntime rt1(dir, dev_a, world.fabric());
  migrlib::MigrRdmaRuntime rt2(dir, dev_b, world.fabric());

  apps::PerftestConfig cfg;
  cfg.num_qps = 2;
  cfg.msg_size = param.msg_size;
  cfg.queue_depth = 32;
  cfg.opcode = param.opcode;
  cfg.max_messages_per_qp = 200;
  apps::PerftestPeer tx(rt1, world.add_process("tx"), 1, apps::PerftestPeer::Role::sender,
                        cfg);
  apps::PerftestPeer rx(rt2, world.add_process("rx"), 2, apps::PerftestPeer::Role::receiver,
                        cfg);
  for (std::uint32_t i = 0; i < cfg.num_qps; ++i) {
    ASSERT_TRUE(apps::PerftestPeer::connect_pair(tx, i, rx, i).is_ok());
  }
  tx.start();
  rx.start();
  const sim::TimeNs deadline = world.loop().now() + sim::sec(20);
  while (!tx.finished() && world.loop().now() < deadline) {
    world.loop().run_until(world.loop().now() + sim::msec(10));
  }
  ASSERT_TRUE(tx.finished()) << "stream did not finish under loss " << param.loss;
  EXPECT_EQ(tx.stats().completed_msgs, 400u);
  EXPECT_EQ(tx.stats().order_violations, 0u);
  EXPECT_EQ(tx.stats().errors, 0u);
  if (rnic::is_two_sided(param.opcode)) {
    EXPECT_EQ(rx.stats().recv_msgs, 400u);
    EXPECT_EQ(rx.stats().order_violations, 0u);
    EXPECT_EQ(rx.stats().content_corruptions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransportProperty,
    ::testing::Values(
        TransportParam{64, 0.0, rnic::WrOpcode::send},
        TransportParam{64, 0.02, rnic::WrOpcode::send},
        TransportParam{512, 0.05, rnic::WrOpcode::send},
        TransportParam{4096, 0.0, rnic::WrOpcode::send},
        TransportParam{4096, 0.02, rnic::WrOpcode::send},
        TransportParam{16384, 0.01, rnic::WrOpcode::send},
        TransportParam{64, 0.0, rnic::WrOpcode::rdma_write},
        TransportParam{4096, 0.02, rnic::WrOpcode::rdma_write},
        TransportParam{65536, 0.01, rnic::WrOpcode::rdma_write},
        TransportParam{65536, 0.0, rnic::WrOpcode::rdma_write}),
    [](const auto& info) {
      const auto& p = info.param;
      return (rnic::is_two_sided(p.opcode) ? std::string("send_") : std::string("write_")) +
             std::to_string(p.msg_size) + "B_loss" +
             std::to_string(static_cast<int>(p.loss * 100));
    });

// ---------------------------------------------------------------------------
// Migration properties
// ---------------------------------------------------------------------------

struct MigrationParam {
  std::uint32_t qps;
  rnic::WrOpcode opcode;
  bool pre_setup;
};

class MigrationProperty : public ::testing::TestWithParam<MigrationParam> {};

TEST_P(MigrationProperty, CorrectnessAndReportConsistency) {
  const auto param = GetParam();
  rnic::World world;
  migrlib::GuestDirectory dir;
  std::vector<std::unique_ptr<migrlib::MigrRdmaRuntime>> rts;
  for (net::HostId h = 1; h <= 3; ++h) {
    rts.push_back(
        std::make_unique<migrlib::MigrRdmaRuntime>(dir, world.add_device(h), world.fabric()));
  }
  apps::PerftestConfig cfg;
  cfg.num_qps = param.qps;
  cfg.msg_size = 8192;
  cfg.queue_depth = 16;
  cfg.opcode = param.opcode;
  apps::PerftestPeer tx(*rts[0], world.add_process("tx"), 1, apps::PerftestPeer::Role::sender,
                        cfg);
  apps::PerftestPeer rx(*rts[2], world.add_process("rx"), 2,
                        apps::PerftestPeer::Role::receiver, cfg);
  for (std::uint32_t i = 0; i < cfg.num_qps; ++i) {
    ASSERT_TRUE(apps::PerftestPeer::connect_pair(tx, i, rx, i).is_ok());
  }
  tx.start();
  rx.start();
  world.loop().run_until(world.loop().now() + sim::msec(3));

  auto& dest = world.add_process("dest");
  migrlib::MigrationOptions opts;
  opts.pre_setup = param.pre_setup;
  migrlib::MigrationController ctl(world.loop(), world.fabric(), dir, opts);
  migrlib::MigrationReport report;
  bool done = false;
  ASSERT_TRUE(ctl.start(1, 2, dest, &tx, [&](const migrlib::MigrationReport& r) {
                   report = r;
                   done = true;
                 })
                  .is_ok());
  const sim::TimeNs deadline = world.loop().now() + sim::sec(60);
  while (!done && world.loop().now() < deadline) {
    world.loop().run_until(world.loop().now() + sim::msec(1));
  }
  ASSERT_TRUE(done);
  ASSERT_TRUE(report.ok) << report.error;
  world.loop().run_until(world.loop().now() + sim::msec(20));

  // §5.3 invariants survive the migration.
  EXPECT_EQ(tx.stats().order_violations, 0u);
  EXPECT_EQ(tx.stats().errors, 0u);
  EXPECT_EQ(rx.stats().order_violations, 0u);
  EXPECT_EQ(rx.stats().content_corruptions, 0u);
  EXPECT_EQ(rx.stats().errors, 0u);

  // Report consistency: ordered timestamps, components sum into blackout.
  EXPECT_LE(report.start, report.suspend_at);
  EXPECT_LE(report.suspend_at, report.freeze_at);
  EXPECT_LT(report.freeze_at, report.resume_at);
  EXPECT_GE(report.wbs_elapsed, 0);
  EXPECT_GT(report.transfer, 0);
  EXPECT_GT(report.full_restore, 0);
  // The service blackout is the freeze->resume window; its parts must not
  // exceed it (scheduling may add slack but never subtract).
  EXPECT_LE(report.blackout_components(), report.service_blackout() + sim::msec(1));
  if (param.pre_setup) {
    EXPECT_GT(report.presetup_restore_rdma, 0);
  } else {
    EXPECT_GT(report.restore_rdma, 0);
    EXPECT_EQ(report.presetup_restore_rdma, 0);
  }
  // Traffic resumed after migration.
  const auto msgs_before = tx.stats().completed_msgs;
  world.loop().run_until(world.loop().now() + sim::msec(10));
  EXPECT_GT(tx.stats().completed_msgs, msgs_before);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MigrationProperty,
    ::testing::Values(MigrationParam{1, rnic::WrOpcode::rdma_write, true},
                      MigrationParam{4, rnic::WrOpcode::rdma_write, true},
                      MigrationParam{16, rnic::WrOpcode::rdma_write, true},
                      MigrationParam{4, rnic::WrOpcode::rdma_write, false},
                      MigrationParam{16, rnic::WrOpcode::rdma_write, false},
                      MigrationParam{1, rnic::WrOpcode::send, true},
                      MigrationParam{4, rnic::WrOpcode::send, true},
                      MigrationParam{16, rnic::WrOpcode::send, true},
                      MigrationParam{4, rnic::WrOpcode::send, false}),
    [](const auto& info) {
      const auto& p = info.param;
      return std::string(rnic::is_two_sided(p.opcode) ? "send" : "write") + "_qp" +
             std::to_string(p.qps) + (p.pre_setup ? "_presetup" : "_nopresetup");
    });

// ---------------------------------------------------------------------------
// Adversarial-network migration properties
// ---------------------------------------------------------------------------

struct AdversarialParam {
  std::uint64_t seed;
  double loss;  // steady-state data-plane drop probability
};

class AdversarialMigrationProperty : public ::testing::TestWithParam<AdversarialParam> {};

// Under sustained loss + reordering, every seeded migration must either
// complete (§5.3 invariants intact) or abort cleanly: abort reason recorded,
// source resumed and serving, and no QP on any host left permanently
// unacked.
TEST_P(AdversarialMigrationProperty, CompletesOrAbortsCleanlyNoStuckQps) {
  const auto param = GetParam();
  rnic::World world({}, param.seed);
  std::vector<rnic::Device*> devices;
  migrlib::GuestDirectory dir;
  std::vector<std::unique_ptr<migrlib::MigrRdmaRuntime>> rts;
  for (net::HostId h = 1; h <= 3; ++h) {
    devices.push_back(&world.add_device(h));
    rts.push_back(
        std::make_unique<migrlib::MigrRdmaRuntime>(dir, *devices.back(), world.fabric()));
  }
  // Steady loss + reordering from t=0, plus two seeded loss bursts thrown
  // at the migration window.
  fault::ScenarioRunner runner(world.loop(), world.fabric());
  fault::FaultPlan plan = fault::FaultPlan::random_bursts(
      param.seed, /*bursts=*/2, sim::msec(5), sim::msec(60), sim::msec(2),
      std::min(1.0, param.loss * 4));
  plan.baseline(param.loss, /*reorder_prob=*/0.25, /*reorder_delay=*/sim::usec(20));
  runner.run(plan);

  apps::PerftestConfig cfg;
  cfg.num_qps = 4;
  cfg.msg_size = 8192;
  cfg.queue_depth = 16;
  cfg.opcode = rnic::WrOpcode::rdma_write;
  apps::PerftestPeer tx(*rts[0], world.add_process("tx"), 1, apps::PerftestPeer::Role::sender,
                        cfg);
  apps::PerftestPeer rx(*rts[2], world.add_process("rx"), 2,
                        apps::PerftestPeer::Role::receiver, cfg);
  for (std::uint32_t i = 0; i < cfg.num_qps; ++i) {
    ASSERT_TRUE(apps::PerftestPeer::connect_pair(tx, i, rx, i).is_ok());
  }
  tx.start();
  rx.start();
  world.loop().run_until(world.loop().now() + sim::msec(3));

  auto& dest = world.add_process("dest");
  migrlib::MigrationOptions opts;
  opts.wbs_timeout = sim::msec(500);
  migrlib::MigrationController ctl(world.loop(), world.fabric(), dir, opts);
  migrlib::MigrationReport report;
  bool done = false;
  ASSERT_TRUE(ctl.start(1, 2, dest, &tx, [&](const migrlib::MigrationReport& r) {
                   report = r;
                   done = true;
                 })
                  .is_ok());
  const sim::TimeNs deadline = world.loop().now() + sim::sec(60);
  while (!done && world.loop().now() < deadline) {
    world.loop().run_until(world.loop().now() + sim::msec(1));
  }
  ASSERT_TRUE(done) << "migration neither completed nor aborted under loss " << param.loss;

  if (report.ok) {
    EXPECT_FALSE(report.aborted);
    EXPECT_EQ(tx.stats().order_violations, 0u);
    EXPECT_EQ(rx.stats().order_violations, 0u);
    EXPECT_EQ(rx.stats().content_corruptions, 0u);
  } else {
    ASSERT_TRUE(report.aborted) << "failed without clean abort: " << report.error;
    EXPECT_FALSE(report.abort_reason.empty());
    EXPECT_TRUE(report.source_resumed);
  }

  // Whatever the outcome, the service must still be making progress...
  const auto before = tx.stats().completed_msgs;
  world.loop().run_until(world.loop().now() + sim::msec(50));
  EXPECT_GT(tx.stats().completed_msgs, before)
      << "service stalled after " << (report.ok ? "completion" : "abort");
  EXPECT_EQ(tx.stats().errors, 0u);

  // ...and no QP anywhere may sit with unacked work and no progress. The
  // stale window far exceeds the retransmit timeout, so a QP flagged here
  // is permanently wedged, not merely retrying.
  world.loop().run_until(world.loop().now() + sim::msec(300));
  for (auto* dev : devices) {
    EXPECT_TRUE(dev->audit_stuck_qps(sim::msec(250)).empty())
        << "stuck QP on host " << dev->host();
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, AdversarialMigrationProperty,
    ::testing::Values(AdversarialParam{1, 0.001}, AdversarialParam{2, 0.001},
                      AdversarialParam{3, 0.01}, AdversarialParam{4, 0.01},
                      AdversarialParam{5, 0.05}, AdversarialParam{6, 0.05},
                      AdversarialParam{7, 0.05}),
    [](const auto& info) {
      const auto& p = info.param;
      return "seed" + std::to_string(p.seed) + "_loss" +
             std::to_string(static_cast<int>(p.loss * 1000)) + "permille";
    });

// ---------------------------------------------------------------------------
// Serialization round-trip properties
// ---------------------------------------------------------------------------

class ImageRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImageRoundTrip, RandomRdmaImage) {
  common::Rng rng(GetParam());
  migrlib::RdmaImage img;
  img.final = rng.chance(0.5);
  const int n = static_cast<int>(rng.range(0, 20));
  for (int i = 0; i < n; ++i) {
    img.pds.push_back({static_cast<std::uint32_t>(rng.next())});
    migrlib::MrRec mr;
    mr.vlkey = static_cast<std::uint32_t>(rng.next());
    mr.addr = rng.next();
    mr.length = rng.range(1, 1 << 20);
    mr.access = static_cast<std::uint32_t>(rng.range(0, 31));
    img.mrs.push_back(mr);
    migrlib::QpRec qp;
    qp.vqpn = static_cast<std::uint32_t>(rng.next());
    qp.connected = rng.chance(0.5);
    qp.dest_host = static_cast<std::uint32_t>(rng.range(1, 100));
    qp.dest_pqpn = static_cast<std::uint32_t>(rng.next());
    qp.peer_guest = static_cast<std::uint32_t>(rng.next());
    img.qps.push_back(qp);
    migrlib::VSendWr s;
    s.vqpn = qp.vqpn;
    s.wr.wr_id = rng.next();
    s.wr.opcode = rng.chance(0.5) ? rnic::WrOpcode::send : rnic::WrOpcode::rdma_write;
    s.wr.sge.resize(rng.range(0, 3));
    for (auto& sge : s.wr.sge) {
      sge.addr = rng.next();
      sge.length = static_cast<std::uint32_t>(rng.range(1, 1 << 16));
      sge.lkey = static_cast<std::uint32_t>(rng.next());
    }
    img.intercepted_sends.push_back(s);
    migrlib::FakeCqe f;
    f.vcq = static_cast<std::uint32_t>(rng.next());
    f.cqe.wr_id = rng.next();
    f.cqe.qpn = static_cast<std::uint32_t>(rng.next());
    f.cqe.byte_len = static_cast<std::uint32_t>(rng.next());
    img.fake_cq_entries.push_back(f);
  }
  auto parsed = migrlib::RdmaImage::parse(img.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->serialize(), img.serialize());  // canonical round trip
  EXPECT_EQ(parsed->pds.size(), img.pds.size());
  EXPECT_EQ(parsed->qps.size(), img.qps.size());
  EXPECT_EQ(parsed->intercepted_sends.size(), img.intercepted_sends.size());
  for (std::size_t i = 0; i < img.qps.size(); ++i) {
    EXPECT_EQ(parsed->qps[i].vqpn, img.qps[i].vqpn);
    EXPECT_EQ(parsed->qps[i].dest_pqpn, img.qps[i].dest_pqpn);
    EXPECT_EQ(parsed->qps[i].peer_guest, img.qps[i].peer_guest);
  }
}

TEST_P(ImageRoundTrip, TruncationNeverCrashes) {
  common::Rng rng(GetParam() ^ 0xABCD);
  migrlib::RdmaImage img;
  for (int i = 0; i < 5; ++i) {
    img.pds.push_back({static_cast<std::uint32_t>(rng.next())});
    img.cqs.push_back({static_cast<std::uint32_t>(rng.next()),
                       static_cast<std::uint32_t>(rng.range(1, 4096)), 0});
  }
  auto bytes = img.serialize();
  for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
    common::Bytes truncated(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    auto r = migrlib::RdmaImage::parse(truncated);  // must not crash
    (void)r;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageRoundTrip, ::testing::Values(1, 2, 3, 7, 42, 1337));

// ---------------------------------------------------------------------------
// Address-space model check
// ---------------------------------------------------------------------------

class AddressSpaceModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AddressSpaceModel, RandomOpsAgreeWithReferenceModel) {
  common::Rng rng(GetParam());
  proc::AddressSpace mem;
  std::map<std::uint64_t, std::uint8_t> model;  // addr -> byte
  std::vector<std::pair<proc::VirtAddr, std::uint64_t>> vmas;

  for (int step = 0; step < 400; ++step) {
    const auto op = rng.range(0, 9);
    if (op <= 2 || vmas.empty()) {  // mmap
      const std::uint64_t len = rng.range(1, 4) * proc::kPageSize;
      auto r = mem.mmap(len, "m");
      ASSERT_TRUE(r.is_ok());
      vmas.emplace_back(r.value(), len);
    } else if (op <= 5) {  // write
      const auto& [start, len] = vmas[rng.below(vmas.size())];
      const std::uint64_t off = rng.below(len);
      const std::uint64_t n = rng.range(1, std::min<std::uint64_t>(len - off, 64));
      std::vector<std::uint8_t> data(n);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
      ASSERT_TRUE(mem.write(start + off, data).is_ok());
      for (std::uint64_t i = 0; i < n; ++i) model[start + off + i] = data[i];
    } else if (op <= 7) {  // read
      const auto& [start, len] = vmas[rng.below(vmas.size())];
      const std::uint64_t off = rng.below(len);
      const std::uint64_t n = rng.range(1, std::min<std::uint64_t>(len - off, 64));
      std::vector<std::uint8_t> data(n);
      ASSERT_TRUE(mem.read(start + off, data).is_ok());
      for (std::uint64_t i = 0; i < n; ++i) {
        auto it = model.find(start + off + i);
        const std::uint8_t expect = it == model.end() ? 0 : it->second;
        ASSERT_EQ(data[i], expect) << "addr " << std::hex << start + off + i;
      }
    } else if (op == 8 && !vmas.empty()) {  // mremap to a fresh spot
      const std::size_t vi = rng.below(vmas.size());
      auto [start, len] = vmas[vi];
      const proc::VirtAddr target = 0x2000'0000'0000ULL + step * (1ull << 24);
      ASSERT_TRUE(mem.mremap(start, target).is_ok());
      // Move the model entries.
      std::map<std::uint64_t, std::uint8_t> moved;
      for (auto it = model.lower_bound(start); it != model.end() && it->first < start + len;) {
        moved[target + (it->first - start)] = it->second;
        it = model.erase(it);
      }
      model.merge(moved);
      vmas[vi] = {target, len};
    } else {  // munmap
      const std::size_t vi = rng.below(vmas.size());
      auto [start, len] = vmas[vi];
      ASSERT_TRUE(mem.munmap(start).is_ok());
      for (auto it = model.lower_bound(start); it != model.end() && it->first < start + len;) {
        it = model.erase(it);
      }
      vmas.erase(vmas.begin() + static_cast<std::ptrdiff_t>(vi));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddressSpaceModel, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace migr
