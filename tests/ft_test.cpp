// Continuous fault tolerance: micro-checkpoint epochs, output commit, and
// failover promotion.
//
//  * happy path: protect -> epochs commit -> clean unprotect; the release
//    queue flushed everything, the receiver saw a gapless stream, and the
//    ft_report validates (epoch accounting, monotone commits);
//  * output-commit invariant: kill the primary mid-traffic; no client-
//    visible message from an uncommitted epoch (a leak would surface as a
//    duplicate sequence number after the promoted guest regenerates it);
//  * exactly-once takeover: the GuestDirectory CAS fails loudly on double
//    takeover and wrong-owner claims;
//  * failover waterfall: detect/promote/restore/re_arm/recovery slices tile
//    [killed_at, resume_at] with no gaps (same invariant as migration);
//  * determinism guard: two seeded kill-primary runs produce byte-identical
//    ft_report JSON;
//  * kill-time sweep: kills across epoch boundaries never release
//    uncommitted output.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/ft_plan.hpp"
#include "ft/ft.hpp"
#include "rnic/world.hpp"

namespace migr {
namespace {

using common::Status;
using migrlib::GuestDirectory;
using migrlib::GuestId;
using migrlib::MigrRdmaRuntime;

constexpr GuestId kPrimaryGuest = 10;
constexpr GuestId kPartnerGuest = 20;

// A sequence-numbered traffic source whose counter lives in *guest memory*:
// it checkpoints with the epochs and rolls back on promotion, so after a
// failover the app regenerates exactly the sends the committed state never
// produced. Any uncommitted message that leaked to the wire before the kill
// therefore shows up at the receiver as a duplicate sequence number.
class SeqTraffic : public migrlib::MigratableApp {
 public:
  SeqTraffic(apps::MsgNode& node, GuestId peer, sim::DurationNs interval)
      : node_(&node), peer_(peer), interval_(interval) {}

  void start(proc::SimProcess& p) {
    proc_ = &p;
    seq_addr_ = p.mem().mmap(proc::kPageSize, "seq_counter").value();
    write_seq(0);
    spawn();
  }

  void on_migrated(proc::SimProcess& new_proc) override {
    node_->on_migrated(new_proc);
    proc_ = &new_proc;
    task_.cancel();
    spawn();
  }

 private:
  void spawn() {
    task_ = proc_->spawn_poller(interval_, [this] { tick(); });
  }

  void tick() {
    std::vector<std::uint8_t> raw(8);
    if (!proc_->mem().read(seq_addr_, raw).is_ok()) return;
    common::ByteReader r{raw};
    const std::uint64_t seq = r.u64().value();
    common::ByteWriter w;
    w.u64(seq);
    if (node_->send(peer_, w.data()).is_ok()) write_seq(seq + 1);
  }

  void write_seq(std::uint64_t v) {
    common::ByteWriter w;
    w.u64(v);
    ASSERT_TRUE(proc_->mem().write(seq_addr_, w.data()).is_ok());
  }

  apps::MsgNode* node_;
  GuestId peer_;
  sim::DurationNs interval_;
  proc::SimProcess* proc_ = nullptr;
  proc::VirtAddr seq_addr_ = 0;
  sim::EventHandle task_;
};

// Three hosts: primary (1), standby (2), partner (3). One protected guest
// streaming sequence numbers to a partner on the third host.
class FtScenario {
 public:
  static ft::FtOptions fast_options() {
    ft::FtOptions o;
    o.criu_costs.freeze = sim::usec(50);
    o.criu_costs.dump_base = sim::usec(300);
    o.criu_costs.final_restore_base = sim::msec(2);
    o.epoch_interval = sim::msec(1);
    o.heartbeat_interval = sim::msec(1);
    return o;
  }

  explicit FtScenario(std::uint64_t seed, ft::FtOptions options = fast_options())
      : world_({}, seed) {
    for (net::HostId h : {1, 2, 3}) {
      devices_[h - 1] = &world_.add_device(h);
      runtimes_[h - 1] =
          std::make_unique<MigrRdmaRuntime>(directory_, *devices_[h - 1], world_.fabric());
    }
    primary_proc_ = &world_.add_process("primary");
    partner_proc_ = &world_.add_process("partner");
    backup_proc_ = &world_.add_process("backup");
    a_ = std::make_unique<apps::MsgNode>(*runtimes_[0], *primary_proc_, kPrimaryGuest);
    b_ = std::make_unique<apps::MsgNode>(*runtimes_[2], *partner_proc_, kPartnerGuest);
    EXPECT_TRUE(apps::MsgNode::connect(*a_, *b_).is_ok());
    a_->start();
    b_->start();
    b_->set_handler([this](GuestId, const common::Bytes& payload) {
      common::ByteReader r{payload};
      auto s = r.u64();
      if (s.is_ok()) received_.push_back(s.value());
    });
    traffic_ = std::make_unique<SeqTraffic>(*a_, kPartnerGuest, sim::usec(200));
    traffic_->start(*primary_proc_);
    ctrl_ = std::make_unique<ft::FtController>(world_.loop(), world_.fabric(), directory_,
                                               options);
  }

  Status protect() {
    return ctrl_->protect(
        kPrimaryGuest, /*backup_host=*/2, *backup_proc_, traffic_.get(), a_.get(),
        [this](const Status& st) {
          ready_ = true;
          ready_status_ = st;
        },
        [this](const ft::FtReport& r) {
          done_ = true;
          report_ = r;
        });
  }

  void run_for(sim::DurationNs d) { world_.loop().run_until(world_.loop().now() + d); }

  /// Run until protection is live (full sync committed) or `deadline`.
  bool run_until_protected(sim::DurationNs deadline = sim::msec(100)) {
    const sim::TimeNs end = world_.loop().now() + deadline;
    while (!ready_ && world_.loop().now() < end) run_for(sim::usec(100));
    return ready_ && ready_status_.is_ok();
  }

  bool run_until_done(sim::DurationNs deadline = sim::msec(200)) {
    const sim::TimeNs end = world_.loop().now() + deadline;
    while (!done_ && world_.loop().now() < end) run_for(sim::usec(100));
    return done_;
  }

  rnic::World world_;
  GuestDirectory directory_;
  rnic::Device* devices_[3] = {};
  std::unique_ptr<MigrRdmaRuntime> runtimes_[3];
  proc::SimProcess* primary_proc_ = nullptr;
  proc::SimProcess* partner_proc_ = nullptr;
  proc::SimProcess* backup_proc_ = nullptr;
  std::unique_ptr<apps::MsgNode> a_;
  std::unique_ptr<apps::MsgNode> b_;
  std::unique_ptr<SeqTraffic> traffic_;
  std::unique_ptr<ft::FtController> ctrl_;
  std::vector<std::uint64_t> received_;
  bool ready_ = false;
  Status ready_status_ = Status::ok();
  bool done_ = false;
  ft::FtReport report_;
};

void expect_strictly_increasing(const std::vector<std::uint64_t>& seqs) {
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    ASSERT_LT(seqs[i - 1], seqs[i])
        << "duplicate or reordered seq at index " << i << ": " << seqs[i - 1] << " then "
        << seqs[i] << " (uncommitted output leaked?)";
  }
}

// ---------------------------------------------------------------------------
// Happy path
// ---------------------------------------------------------------------------

TEST(FtController, ProtectCommitsEpochsAndUnprotectsCleanly) {
  FtScenario s(/*seed=*/42);
  ASSERT_TRUE(s.protect().is_ok());
  ASSERT_TRUE(s.run_until_protected());
  s.run_for(sim::msec(50));
  EXPECT_TRUE(s.ctrl_->is_protected());
  EXPECT_GE(s.ctrl_->committed_epoch(), 3u);

  s.ctrl_->unprotect();
  s.run_for(sim::msec(5));  // leftover gate entries drain from ticks
  ASSERT_TRUE(s.done_);
  const ft::FtReport& r = s.report_;
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.failed_over);
  EXPECT_GE(r.epochs_committed, 3u);
  EXPECT_GT(r.full_sync_bytes, 0u);
  EXPECT_GT(r.msgs_released, 0u);
  EXPECT_EQ(r.msgs_dropped, 0u);
  // Output commit delays egress by up to a commit latency: the tax is real
  // and measured.
  EXPECT_GT(r.release_delay_p99, 0);

  // Nothing lost, nothing duplicated, nothing reordered on a clean run.
  s.run_for(sim::msec(5));
  ASSERT_FALSE(s.received_.empty());
  expect_strictly_increasing(s.received_);
  for (std::size_t i = 0; i < s.received_.size(); ++i) {
    ASSERT_EQ(s.received_[i], i) << "gap in clean-run delivery";
  }
}

TEST(FtController, EpochAccountingBalancesAndCommitsAreMonotone) {
  FtScenario s(/*seed=*/42);
  ASSERT_TRUE(s.protect().is_ok());
  ASSERT_TRUE(s.run_until_protected());
  s.run_for(sim::msec(30));
  s.ctrl_->unprotect();
  ASSERT_TRUE(s.done_);
  const ft::FtReport& r = s.report_;

  std::uint64_t incr_wire = 0;
  sim::TimeNs last_commit = 0;
  std::uint64_t last_epoch = 0;
  bool first = true;
  for (const auto& e : r.epochs) {
    if (!first) {
      EXPECT_GT(e.epoch, last_epoch) << "epoch numbers must increase";
    }
    if (e.epoch >= 1) incr_wire += e.wire_bytes;
    if (e.committed_at != 0) {
      EXPECT_GE(e.committed_at, last_commit) << "commit times must be monotone";
      EXPECT_GE(e.committed_at, e.captured_at);
      last_commit = e.committed_at;
    }
    last_epoch = e.epoch;
    first = false;
  }
  EXPECT_EQ(r.epoch_bytes_total, incr_wire);
  EXPECT_GE(r.xfer_bytes_attempted, r.full_sync_bytes + r.epoch_bytes_total);
  // Quiet-ish guest: a steady-state epoch is far smaller than the full sync.
  ASSERT_GE(r.epochs.size(), 3u);
  EXPECT_LT(r.epochs[2].wire_bytes, r.full_sync_bytes / 4);
}

// With the parallel-stream mux carrying the epoch sync, every stream must
// balance (attempted == delivered + lost) and the per-stream rollups must
// sum back to the report totals. Round-robin sharding means the full sync's
// chunks land on every stream, not just the first.
TEST(FtController, MuxCarriedEpochSyncBalancesPerStream) {
  ft::FtOptions o = FtScenario::fast_options();
  o.xfer_streams = 4;
  // Small chunks so even this modest guest's full sync spans all 4 streams
  // (with the 2 MiB default the whole image is one chunk on stream 0).
  o.chunk_bytes = 4096;
  FtScenario s(/*seed=*/42, o);
  ASSERT_TRUE(s.protect().is_ok());
  ASSERT_TRUE(s.run_until_protected());
  s.run_for(sim::msec(30));
  s.ctrl_->unprotect();
  s.run_for(sim::msec(5));
  ASSERT_TRUE(s.done_);
  const ft::FtReport& r = s.report_;
  EXPECT_TRUE(r.ok);
  EXPECT_GE(r.epochs_committed, 3u);
  EXPECT_EQ(r.xfer_streams, 4u);
  ASSERT_EQ(r.xfer_stream_stats.size(), 4u);

  std::uint64_t chunks = 0, attempted = 0, delivered = 0;
  for (const auto& st : r.xfer_stream_stats) {
    EXPECT_GT(st.chunks, 0u) << "a stream carried no chunks";
    EXPECT_EQ(st.bytes_attempted, st.bytes_delivered + st.bytes_lost());
    chunks += st.chunks;
    attempted += st.bytes_attempted;
    delivered += st.bytes_delivered;
  }
  EXPECT_EQ(chunks, r.xfer_chunks);
  EXPECT_EQ(attempted, r.xfer_bytes_attempted);
  EXPECT_EQ(delivered, r.xfer_bytes_delivered);
  EXPECT_EQ(attempted - delivered, r.xfer_bytes_lost);

  // Output commit still holds under the mux: nothing duplicated/reordered.
  s.run_for(sim::msec(5));
  ASSERT_FALSE(s.received_.empty());
  expect_strictly_increasing(s.received_);
}

// ---------------------------------------------------------------------------
// Failover
// ---------------------------------------------------------------------------

TEST(FtController, KillPrimaryPromotesBackupWithoutUncommittedOutput) {
  FtScenario s(/*seed=*/42);
  ASSERT_TRUE(s.protect().is_ok());
  ASSERT_TRUE(s.run_until_protected());
  s.run_for(sim::msec(20));
  const std::size_t received_before_kill = s.received_.size();
  ASSERT_GT(received_before_kill, 0u);

  s.ctrl_->kill_primary();
  ASSERT_TRUE(s.run_until_done());
  const ft::FtReport& r = s.report_;
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.failed_over);
  EXPECT_EQ(s.directory_.locate(kPrimaryGuest), 2u) << "guest must live on the standby";
  EXPECT_GT(r.promoted_epoch, 0u);
  EXPECT_GT(r.resume_at, r.killed_at);
  EXPECT_GT(r.detected_at, r.killed_at);

  // The service must actually resume: new messages arrive after promotion.
  s.run_for(sim::msec(30));
  ASSERT_GT(s.received_.size(), received_before_kill)
      << "no messages delivered after failover";

  // The output-commit invariant: a message released from an uncommitted
  // epoch would be regenerated by the promoted guest and appear twice.
  expect_strictly_increasing(s.received_);

  // Wire-level in-flight loss at the kill is bounded by the send window;
  // everything else is gapless.
  std::uint64_t gap = 0;
  for (std::size_t i = 1; i < s.received_.size(); ++i) {
    gap += s.received_[i] - s.received_[i - 1] - 1;
  }
  gap += s.received_.front();
  EXPECT_LE(gap, 32u) << "more messages lost than the in-flight window";
}

TEST(FtController, FailoverWaterfallTilesKilledToResume) {
  FtScenario s(/*seed=*/42);
  ASSERT_TRUE(s.protect().is_ok());
  ASSERT_TRUE(s.run_until_protected());
  s.run_for(sim::msec(10));
  s.ctrl_->kill_primary();
  ASSERT_TRUE(s.run_until_done());
  const ft::FtReport& r = s.report_;
  ASSERT_TRUE(r.failed_over);

  ASSERT_GE(r.waterfall.size(), 5u);
  EXPECT_EQ(r.waterfall.front().name, "detect");
  EXPECT_EQ(r.waterfall.back().name, "recovery");
  sim::TimeNs cursor = r.killed_at;
  for (const auto& slice : r.waterfall) {
    EXPECT_EQ(slice.start, cursor) << "gap before slice " << slice.name;
    cursor += slice.dur;
  }
  EXPECT_EQ(cursor, r.resume_at) << "waterfall must end exactly at resume";
  EXPECT_EQ(r.waterfall_total(), r.failover_blackout());
}

TEST(GuestDirectory, TakeoverSucceedsExactlyOnceAndFailsLoudly) {
  GuestDirectory d;
  d.place(kPrimaryGuest, 1);

  EXPECT_TRUE(d.takeover(kPrimaryGuest, 1, 2).is_ok());
  EXPECT_EQ(d.locate(kPrimaryGuest), 2u);

  // Double takeover by the same claimant: loud, not silent.
  auto again = d.takeover(kPrimaryGuest, 1, 2);
  ASSERT_FALSE(again.is_ok());
  EXPECT_EQ(again.code(), common::Errc::failed_precondition);

  // Wrong-owner claim (e.g. a stale watchdog naming the old primary).
  auto stale = d.takeover(kPrimaryGuest, 1, 3);
  ASSERT_FALSE(stale.is_ok());
  EXPECT_EQ(stale.code(), common::Errc::failed_precondition);
  EXPECT_EQ(d.locate(kPrimaryGuest), 2u) << "failed takeover must not move the guest";

  auto missing = d.takeover(999, 1, 2);
  ASSERT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.code(), common::Errc::not_found);
}

// ---------------------------------------------------------------------------
// Determinism + kill-time sweep
// ---------------------------------------------------------------------------

std::string run_kill_scenario(std::uint64_t seed, sim::DurationNs kill_after) {
  FtScenario s(seed);
  EXPECT_TRUE(s.protect().is_ok());
  EXPECT_TRUE(s.run_until_protected());
  s.run_for(kill_after);
  s.ctrl_->kill_primary();
  EXPECT_TRUE(s.run_until_done());
  s.run_for(sim::msec(20));
  expect_strictly_increasing(s.received_);
  EXPECT_TRUE(s.report_.ok) << s.report_.error;
  EXPECT_TRUE(s.report_.failed_over);
  return s.report_.json();
}

TEST(FtDeterminism, SeededKillRunsProduceByteIdenticalReports) {
  const std::string first = run_kill_scenario(7, sim::msec(13));
  const std::string second = run_kill_scenario(7, sim::msec(13));
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "ft_report must be byte-identical across seeded runs";
}

TEST(FtProperty, KillsAcrossEpochBoundariesNeverLeakUncommittedOutput) {
  // Offsets stride ~0.4 ms over several ~1.5 ms epoch cycles, landing kills
  // mid-freeze, mid-transfer, right after ACKs, and between epochs. The
  // strictly-increasing assertion inside run_kill_scenario is the property.
  for (int i = 0; i < 8; ++i) {
    const sim::DurationNs kill_after = sim::msec(5) + i * sim::usec(397);
    SCOPED_TRACE("kill_after_ns=" + std::to_string(kill_after));
    (void)run_kill_scenario(/*seed=*/100 + i, kill_after);
  }
}

// ---------------------------------------------------------------------------
// Cluster planning
// ---------------------------------------------------------------------------

TEST(FtPlanner, StandbyAvoidsPrimaryAndPartnerHosts) {
  cluster::ClusterConfig cfg;
  cfg.hosts = 4;
  cluster::ClusterModel model(cfg);
  cluster::TrafficProfile busy;
  busy.send_interval = sim::usec(100);
  busy.extra_mem_bytes = 1ull << 20;
  busy.dirty_interval = sim::msec(1);
  ASSERT_TRUE(model.add_guest(1, 10, busy).is_ok());
  ASSERT_TRUE(model.add_guest(2, 20, {}).is_ok());
  ASSERT_TRUE(model.connect_guests(10, 20).is_ok());

  cluster::FtPlanner planner(model);
  auto plan = planner.plan(10);
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan->primary, 1u);
  EXPECT_NE(plan->backup, 1u) << "standby on the primary is useless";
  EXPECT_NE(plan->backup, 2u) << "standby must not share a host with a partner";

  // Dirty-rate-driven cadence: 1 MiB/ms dirty rate against a 256 KiB budget
  // clamps to the minimum interval.
  EXPECT_EQ(plan->epoch_interval, cluster::FtPlanOptions{}.min_epoch_interval);

  // A clean guest gets the default cadence.
  auto idle_plan = planner.plan(20);
  ASSERT_TRUE(idle_plan.is_ok());
  EXPECT_EQ(idle_plan->epoch_interval, cluster::FtPlanOptions{}.default_epoch_interval);

  // plan_all covers both and is deterministic.
  auto all = planner.plan_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].guest, 10u);
  EXPECT_EQ(all[1].guest, 20u);

  // options_for forwards the cadence and adaptive budget.
  ft::FtOptions fo = planner.options_for(plan.value());
  EXPECT_EQ(fo.epoch_interval, plan->epoch_interval);
  EXPECT_EQ(fo.epoch_byte_budget, cluster::FtPlanOptions{}.epoch_byte_budget);
}

}  // namespace
}  // namespace migr
